"""The module-global state registry: the snapshot/restore inventory.

Deterministic snapshot/restore (ROADMAP item 5) needs one thing before
any serializer can be written: a *complete, audited list* of every
piece of module-level mutable state in the simulator core, with a
classification that says what restore must do about it —

``derived-cache``
    Recomputable from durable state; restore may simply drop it, and a
    sharded worker may keep it **only** because the registered
    ``reset`` callable empties it (FID013 checks the annotation).
``counters``
    Diagnostic tallies; excluded from determinism digests, cleared by
    the same ``reset`` as the cache they describe.
``rng``
    Seeded generator state; restore must re-seed, never copy.
``constant``
    Built once at import and never mutated afterwards; a shard
    function that *writes* one is a bug wherever it happens.

FID014 enforces that every module-level mutable binding in
``repro.hw`` / ``repro.sev`` / ``repro.core`` / ``repro.common``
appears here (and that no entry goes stale), and
``fidelint --state-report`` emits the merged inventory as the
machine-readable seed artifact for the snapshot work.

This manifest is *data about* the tree, matched purely syntactically —
nothing here imports the modules it describes.  It lives in
``repro.common`` (layer 0) because it has two consumers on opposite
ends of the stack: the fidelint effect rules (FID013/FID014/FID016)
read it for enforcement, and ``repro.checkpoint`` hashes it into every
manifest (:func:`repro.checkpoint.snapshot.registry_fingerprint`) so a
checkpoint written against one state inventory fails closed when
loaded under another.  ``repro.analysis.state_registry`` re-exports it
for tooling-facing references.
"""

from collections import namedtuple

#: the restore-semantics classes FID014 accepts
CLASSIFICATIONS = frozenset({
    "derived-cache", "counters", "rng", "constant",
})

StateEntry = namedtuple(
    "StateEntry", "module name classification reset reason")


def _build(entries):
    table = {}
    for module, name, classification, reset, reason in entries:
        if classification not in CLASSIFICATIONS:
            raise ValueError(
                "%s.%s: unknown classification %r"
                % (module, name, classification))
        key = (module, name)
        if key in table:
            raise ValueError("duplicate registry entry %s.%s"
                             % (module, name))
        table[key] = StateEntry(module, name, classification, reset,
                                reason)
    return table


#: (module, binding, classification, reset callable in that module or
#:  None, why it is safe) — keep sorted by module then name
REGISTRY = _build([
    ("repro.common.crypto", "_key_invalidations", "counters",
     "clear_keystream_cache",
     "forget_key tally for cache diagnostics; never enters results"),
    ("repro.common.crypto", "_line_cache", "derived-cache",
     "clear_keystream_cache",
     "whole-line keystream LRU; pure function of (key, line_pa)"),
    ("repro.common.crypto", "_line_hits", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.crypto", "_line_misses", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.crypto", "_midstate_cache", "derived-cache",
     "clear_keystream_cache",
     "per-(key, tweak) hash midstate LRU; recomputable on demand"),
    ("repro.common.crypto", "_midstate_hits", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.crypto", "_midstate_misses", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.crypto", "_span_cache", "derived-cache",
     "clear_keystream_cache",
     "multi-line span keystream LRU; pure function of (key, line_pa, "
     "nlines), purged with the line cache by forget_key"),
    ("repro.common.crypto", "_span_hits", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.crypto", "_span_misses", "counters",
     "clear_keystream_cache",
     "cache-effectiveness tally reported by keystream_cache_stats"),
    ("repro.common.types", "PRIV_OPCODES", "constant", None,
     "privileged-encoding table built at import; FID008 guards the "
     "only writers"),
    ("repro.fleet.policies", "POLICIES", "constant", None,
     "placement-policy dispatch table built at import and only ever "
     "read (make_policy instantiates per model)"),
    ("repro.sev.exit_policy", "EXIT_POLICIES", "constant", None,
     "VMEXIT policy table built at import and only ever read"),
])


def lookup(module, name):
    """The :class:`StateEntry` for one binding, or None."""
    return REGISTRY.get((module, name))


def entries_for(module):
    """Registered entries for one module, sorted by name."""
    return sorted((e for (m, _n), e in REGISTRY.items() if m == module),
                  key=lambda e: e.name)


def all_entries():
    """Every entry, sorted by (module, name) — report order."""
    return [REGISTRY[key] for key in sorted(REGISTRY)]
