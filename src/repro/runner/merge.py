"""Canonical serialization and digests for the determinism contract.

The runner's promise is that a sharded run aggregates to exactly the
serial run's output.  Tests and CI enforce that promise by comparing
:func:`digest`\\ s of the merged results: a canonical, order-stable
SHA-256 over a JSON rendering in which dataclasses, bytes, sets and
tuples all have one fixed spelling.

Wall-clock fields are the one thing sharding is *allowed* to change;
:func:`strip_timing` removes them (``*_s``, ``speedup``, per-shard
counters) so bench reports can also be digest-compared across jobs
settings.
"""

import dataclasses
import hashlib
import json

#: Key names (and suffixes) that carry host wall-clock, never model state.
TIMING_KEY_SUFFIXES = ("_s", "_us")
TIMING_KEYS = frozenset({
    "speedup", "per_translation_us", "sharding", "utilization",
    "host_cpus", "jobs", "worker",
})


def canonical(value):
    """A pure-JSON rendering with one spelling per Python shape."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return ["bytes", bytes(value).hex()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return ["dataclass", type(value).__name__,
                [[f.name, canonical(getattr(value, f.name))]
                 for f in dataclasses.fields(value)]]
    if isinstance(value, dict):
        items = [[canonical(k), canonical(v)] for k, v in value.items()]
        return ["dict", sorted(items, key=lambda kv: json.dumps(kv[0]))]
    if isinstance(value, (list, tuple)):
        return ["list", [canonical(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted((canonical(v) for v in value),
                              key=json.dumps)]
    raise TypeError("no canonical form for %r" % type(value).__name__)


def digest(value):
    """Hex SHA-256 of the canonical rendering."""
    blob = json.dumps(canonical(value), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _is_timing_key(key):
    return key in TIMING_KEYS or (
        isinstance(key, str) and key.endswith(TIMING_KEY_SUFFIXES))


def strip_timing(value):
    """Recursively drop wall-clock-bearing dict keys.

    Applied before digesting artifacts like the perfbench report, whose
    deterministic content (cycle ledgers, digests, equivalence flags)
    must not vary with ``--jobs`` while its timings naturally do.
    """
    if isinstance(value, dict):
        return {k: strip_timing(v) for k, v in value.items()
                if not _is_timing_key(k)}
    if isinstance(value, (list, tuple)):
        return [strip_timing(v) for v in value]
    return value


def deterministic_digest(value):
    """Digest of the timing-stripped value — the cross-``--jobs``
    comparison key for timed reports."""
    return digest(strip_timing(value))
