"""Deterministic shard planning for embarrassingly parallel runs.

A :class:`WorkUnit` names one independent piece of work — a soak seed,
an eval benchmark, an attack case, a sensitivity sweep point — as a
picklable ``(key, fn, args, kwargs)`` tuple.  A :class:`ShardPlan`
groups units into :class:`Shard`\\ s, the granularity at which the
executor dispatches worker processes, retries crashes and applies
timeouts.

Planning is pure bookkeeping and therefore deterministic: the same
units in the same order always produce the same plan, whatever ``jobs``
the executor later runs it with.  The plan also remembers the original
submission order (:attr:`ShardPlan.key_order`) so the merge step can
re-sort results into a canonical order that is independent of which
worker finished first.
"""

from dataclasses import dataclass

from repro.common.errors import ReproError


@dataclass(frozen=True)
class WorkUnit:
    """One independent, picklable piece of work.

    ``key`` must be unique within a plan, hashable, and stable across
    runs — it is the merge key.  ``fn`` must be a module-level callable
    (so worker processes can import it); ``kwargs`` is stored as a
    sorted tuple of pairs to keep the unit hashable and its pickled
    form byte-stable.
    """

    key: object
    fn: object
    args: tuple = ()
    kwargs: tuple = ()

    @classmethod
    def of(cls, key, fn, *args, **kwargs):
        return cls(key, fn, tuple(args), tuple(sorted(kwargs.items())))

    def call(self):
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class Shard:
    """A dispatch unit: one worker process runs one shard attempt."""

    index: int
    units: tuple

    @property
    def keys(self):
        return tuple(unit.key for unit in self.units)


class ShardPlan:
    """An ordered split of work units into shards."""

    def __init__(self, shard_unit_lists, key_order):
        self.shards = [Shard(index, tuple(units))
                       for index, units in enumerate(shard_unit_lists)
                       if units]
        self.key_order = list(key_order)
        seen = set()
        for key in self.key_order:
            if key in seen:
                raise ReproError("duplicate shard key %r" % (key,))
            seen.add(key)
        planned = [k for shard in self.shards for k in shard.keys]
        if sorted(map(repr, planned)) != sorted(map(repr, self.key_order)):
            raise ReproError("shard plan does not cover the unit set")

    def __len__(self):
        return len(self.shards)

    @property
    def unit_count(self):
        return len(self.key_order)

    @classmethod
    def single(cls, units):
        """One shard per unit — maximum scheduling freedom, finest
        retry/timeout granularity.  The default for every built-in
        caller."""
        units = list(units)
        return cls([[unit] for unit in units], [u.key for u in units])

    @classmethod
    def interleaved(cls, units, nshards):
        """Unit ``i`` goes to shard ``i % nshards`` — balances a work
        list whose cost trends with position (e.g. growing seeds)."""
        units = list(units)
        nshards = max(1, min(nshards, len(units)))
        buckets = [[] for _ in range(nshards)]
        for index, unit in enumerate(units):
            buckets[index % nshards].append(unit)
        return cls(buckets, [u.key for u in units])

    @classmethod
    def chunked(cls, units, nshards):
        """Contiguous runs of units per shard — fewer process spawns
        when per-unit work is tiny."""
        units = list(units)
        nshards = max(1, min(nshards, len(units)))
        size, extra = divmod(len(units), nshards)
        buckets, start = [], 0
        for index in range(nshards):
            take = size + (1 if index < extra else 0)
            buckets.append(units[start:start + take])
            start += take
        return cls(buckets, [u.key for u in units])
