"""Sharded parallel execution with a deterministic merge.

Everything above one :class:`~repro.system.System` — the chaos soak's
seed sweep, the eval figure suites, the attack matrix, the sensitivity
sweeps, the perfbench suite — is a list of shared-nothing simulations.
This package runs such lists across worker processes (``--jobs N`` on
every CLI it backs) while guaranteeing that the *aggregated output is
byte-identical to the serial run*: results are re-sorted into plan
order before merging, and :mod:`repro.runner.merge` provides the
canonical digests that tests and CI compare.

Layering: the runner sits beside ``repro.hw`` at the bottom of the
stack — it knows nothing about guests, fleets or attacks.  Callers
hand it module-level functions and picklable arguments; it hands back
their results in a deterministic order, plus wall-clock shard counters
for bench artifacts.
"""

import os

from repro.runner.executor import (
    RunnerError,
    RunReport,
    ShardResult,
    execute,
)
from repro.runner.merge import canonical, deterministic_digest, digest
from repro.runner.plan import Shard, ShardPlan, WorkUnit

__all__ = [
    "RunnerError",
    "RunReport",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "WorkUnit",
    "canonical",
    "deterministic_digest",
    "digest",
    "execute",
    "unit_checkpoint_path",
]


def unit_checkpoint_path(base_dir, key):
    """Canonical per-unit checkpoint directory under ``base_dir``.

    Work units running in different shards must never share one
    checkpoint store (two writers would race the same latest-pointer),
    so each unit gets its own subdirectory.  The layout lives here, in
    the runner, so a sweep's checkpoint writer and its resume path
    agree on it whatever process either runs in.
    """
    return os.path.join(base_dir, "unit-%s" % (key,))


def add_jobs_argument(parser, default=1):
    """The shared ``--jobs``/``--fresh-workers`` flags every
    runner-backed CLI exposes."""
    parser.add_argument(
        "--jobs", type=int, default=default, metavar="N",
        help="worker processes for independent work units "
             "(default %(default)s: serial, deterministic-tooling "
             "friendly; results are byte-identical either way)")
    parser.add_argument(
        "--fresh-workers", action="store_true",
        help="fork one fresh process per shard instead of the "
             "persistent worker pool (cold caches every shard; the "
             "control arm of the pool-vs-fresh equivalence diff)")
    return parser
