"""The shard executor: serial by default, a worker pool on request.

``execute(units, jobs=N)`` runs every :class:`~repro.runner.plan.WorkUnit`
and returns a :class:`RunReport` whose results are re-sorted into the
plan's submission order, so the aggregated output is byte-identical
whatever ``jobs`` was and whichever worker finished first.

* ``jobs=1`` (the default) runs everything in-process with no
  ``multiprocessing`` machinery at all — the path the determinism
  tooling audits, and the baseline the differential tests compare
  against.
* ``jobs>1`` with ``reuse_workers=True`` (the default) dispatches
  shards to a pool of at most ``jobs`` *persistent* worker processes.
  Each worker executes many shards over its lifetime, so process-global
  derived caches (the keystream line/midstate/span LRUs) stay warm
  across shards — the registry-audited shard-purity rule (FID013) is
  what makes that safe: work units cannot mutate unregistered module
  state, so a warm cache can change wall-clock but never results.
  Shards travel to workers, and result lists travel back, as single
  pickle-framed byte blobs per shard (one ``send_bytes`` each way, not
  one pickle per result), so the spawn/serialize overhead is measurable:
  the report's ``sharding`` section breaks out spawn vs transport vs
  compute time and the bytes moved.
* ``jobs>1`` with ``reuse_workers=False`` forks one fresh process per
  shard attempt (the pre-pool behaviour) — kept both as the
  cold-cache control for the pool-vs-fresh CI diff and for workloads
  that want per-shard process isolation.

Failure handling is identical in both parallel modes: a worker that
raises reports a per-unit error; a worker that *dies* (segfault,
``os._exit``, OOM kill) fails only the shard it was running, which is
retried up to ``retries`` times — on a fresh replacement worker — before
the shard is marked failed.  Shards exceeding ``timeout_s`` are
terminated and retried the same way.  A shard still running long after
the median completed shard time is flagged as a straggler (diagnostic
event only; it is allowed to finish).

Per-shard keystream-cache statistics are captured by *delta snapshots*
(:func:`repro.common.crypto.keystream_cache_delta`) around each shard,
never by clearing the cache — clearing would throw away exactly the
warmth the pool exists to preserve.  Fresh processes start from zero
counters, so their deltas equal their absolute stats and the two modes
report the same shape.

Failures never silently truncate a run: :meth:`RunReport.values`
raises :class:`RunnerError` listing every failed shard key.

Wall-clock is inherently part of this module's contract (timeouts,
straggler detection, utilization and transport counters); every
*modelled* quantity in the work units themselves still comes from the
cycle counter.
"""

import multiprocessing
import pickle
import statistics
# fidelint: ignore[FID007] -- the executor schedules and measures host
# wall-clock (shard timeouts, straggler detection, utilization); it
# never feeds time into modelled results, which remain pure functions
# of their seeds.
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.common import crypto
from repro.common.errors import ReproError
from repro.runner.plan import ShardPlan

#: Parent poll cadence while workers run (seconds).
_TICK_S = 0.05

#: First frame a pool worker sends once its interpreter is up — the
#: parent timestamps it to measure true spawn latency.
_READY = b"R"

#: Empty frame: the pool shutdown sentinel.
_SHUTDOWN = b""


class RunnerError(ReproError):
    """A shard failed after exhausting its retry budget."""


@dataclass
class ShardResult:
    """Outcome of one work unit, wherever it ran."""

    key: object
    ok: bool
    value: object = None
    error: str = ""
    elapsed_s: float = 0.0
    attempts: int = 1
    worker: str = "serial"


@dataclass
class RunReport:
    """Everything one ``execute`` call observed.

    ``results`` is in plan submission order — the deterministic merge.
    ``events`` (crashes, retries, timeouts, stragglers) and
    ``sharding`` (spawn/transport/compute breakdown, per-shard
    keystream-cache deltas) are wall-clock diagnostics and may
    legitimately differ between runs; nothing deterministic may be
    derived from them.
    """

    jobs: int
    results: list
    wall_s: float = 0.0
    busy_s: float = 0.0
    events: list = field(default_factory=list)
    sharding: dict = field(default_factory=dict)

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    def values(self):
        """The unit return values in plan order; raises on any failure."""
        bad = self.failed
        if bad:
            raise RunnerError(
                "%d/%d shards failed: %s" % (
                    len(bad), len(self.results),
                    "; ".join("%r: %s" % (r.key, r.error.strip().splitlines()[-1]
                                          if r.error else "unknown")
                              for r in bad[:5])))
        return [r.value for r in self.results]

    def utilization(self):
        """Busy worker time over available worker time, 0..1."""
        if self.wall_s <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def shard_counters(self):
        """JSON-able per-shard wall-clock counters for bench artifacts."""
        return [{"key": str(r.key), "ok": r.ok, "elapsed_s": r.elapsed_s,
                 "attempts": r.attempts, "worker": r.worker}
                for r in self.results]


def _run_units(units):
    """Run every unit of one shard; per-unit outcomes, never raises.

    Clean exceptions are caught per unit so one bad seed cannot take
    its shard-mates down with it; only a hard death (crash, kill,
    unpicklable result) loses the whole shard attempt.
    """
    out = []
    for unit in units:
        t0 = time.perf_counter()
        try:
            value = unit.call()
            out.append((unit.key, True, value, "",
                        time.perf_counter() - t0))
        except Exception:
            out.append((unit.key, False, None, traceback.format_exc(),
                        time.perf_counter() - t0))
    return out


def _frame(out, keystream):
    """One result blob per shard: framed bytes, pickled once."""
    return pickle.dumps((out, keystream), pickle.HIGHEST_PROTOCOL)


def _shard_worker(conn, shard):
    """Fresh-process entry: run one shard, send one framed result."""
    before = crypto.keystream_cache_stats()
    out = _run_units(shard.units)
    conn.send_bytes(_frame(out, crypto.keystream_cache_delta(before)))
    conn.close()


def _pool_worker(conn):
    """Persistent-worker entry: announce readiness, then serve shards
    until the shutdown sentinel (or a closed pipe).

    Nothing is cleared between shards: the keystream caches stay warm
    on purpose, and the per-shard statistics are delta snapshots.
    """
    conn.send_bytes(_READY)
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if blob == _SHUTDOWN:
            break
        shard = pickle.loads(blob)
        before = crypto.keystream_cache_stats()
        out = _run_units(shard.units)
        conn.send_bytes(_frame(out, crypto.keystream_cache_delta(before)))
    conn.close()


def _new_sharding(mode):
    """The skeleton of a report's ``sharding`` diagnostics section."""
    return {
        "mode": mode,
        "workers_spawned": 0,
        "spawn_s": 0.0,
        "transport_s": 0.0,
        "dispatch_bytes": 0,
        "result_bytes": 0,
        "compute_s": 0.0,
        "shards": [],
    }


def execute(units_or_plan, jobs=1, timeout_s=None, retries=1,
            straggler_factor=4.0, straggler_min_s=1.0, on_event=None,
            reuse_workers=True):
    """Run a plan (or a plain iterable of units) and merge the results.

    ``on_event(kind, details)``, when given, mirrors every diagnostic
    event as it happens (for live progress reporting).
    ``reuse_workers`` selects the persistent pool for ``jobs>1``;
    ``False`` restores one fresh process per shard attempt.
    """
    if isinstance(units_or_plan, ShardPlan):
        plan = units_or_plan
    else:
        plan = ShardPlan.single(list(units_or_plan))
    events = []

    def emit(kind, **details):
        events.append((kind, details))
        if on_event is not None:
            on_event(kind, details)

    t_start = time.perf_counter()
    if jobs <= 1:
        sharding = _new_sharding("serial")
        by_key = _execute_serial(plan, sharding)
        jobs = 1
    elif reuse_workers:
        sharding = _new_sharding("pool")
        by_key = _execute_pool(plan, jobs, timeout_s, retries,
                               straggler_factor, straggler_min_s, emit,
                               sharding)
    else:
        sharding = _new_sharding("fresh")
        by_key = _execute_fresh(plan, jobs, timeout_s, retries,
                                straggler_factor, straggler_min_s, emit,
                                sharding)
    wall_s = time.perf_counter() - t_start
    ordered = [by_key[key] for key in plan.key_order]
    busy_s = sum(r.elapsed_s for r in ordered)
    sharding["compute_s"] = busy_s
    return RunReport(jobs=jobs, results=ordered, wall_s=wall_s,
                     busy_s=busy_s, events=events, sharding=sharding)


def _execute_serial(plan, sharding):
    by_key = {}
    for shard in plan.shards:
        before = crypto.keystream_cache_stats()
        for key, ok, value, error, elapsed in _run_units(shard.units):
            by_key[key] = ShardResult(key, ok, value, error, elapsed)
        sharding["shards"].append({
            "shard": shard.index, "worker": "serial",
            "keystream": crypto.keystream_cache_delta(before)})
    return by_key


def _fail_or_retry_fn(attempts, retries, pending, by_key, emit):
    def fail_or_retry(shard, reason):
        if attempts[shard.index] <= retries:
            emit("shard-retried", shard=shard.index, keys=shard.keys,
                 attempt=attempts[shard.index], reason=reason)
            pending.append(shard)
            return
        emit("shard-failed", shard=shard.index, keys=shard.keys,
             attempts=attempts[shard.index], reason=reason)
        for unit in shard.units:
            by_key[unit.key] = ShardResult(
                unit.key, False, error=reason,
                attempts=attempts[shard.index], worker="dead")
    return fail_or_retry


def _merge_payload(by_key, payload, attempt, worker_name, shard_index,
                   sharding):
    out, keystream = payload
    for key, ok, value, error, unit_elapsed in out:
        by_key[key] = ShardResult(key, ok, value, error, unit_elapsed,
                                  attempt, worker=worker_name)
    sharding["shards"].append({
        "shard": shard_index, "worker": worker_name,
        "keystream": keystream})


def _execute_fresh(plan, jobs, timeout_s, retries,
                   straggler_factor, straggler_min_s, emit, sharding):
    """One fresh process per shard attempt (cold caches every time)."""
    ctx = multiprocessing.get_context()
    pending = deque(plan.shards)
    attempts = {shard.index: 0 for shard in plan.shards}
    running = {}        # conn -> [shard, process, started_at, flagged]
    by_key = {}
    completed_s = []    # parent-side shard wall times, for the median
    fail_or_retry = _fail_or_retry_fn(attempts, retries, pending, by_key,
                                      emit)

    while pending or running:
        while pending and len(running) < jobs:
            shard = pending.popleft()
            attempts[shard.index] += 1
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            t0 = time.perf_counter()
            process = ctx.Process(target=_shard_worker,
                                  args=(child_conn, shard))
            process.daemon = True
            process.start()
            sharding["spawn_s"] += time.perf_counter() - t0
            sharding["workers_spawned"] += 1
            child_conn.close()
            running[parent_conn] = [shard, process,
                                    time.perf_counter(), False]

        ready = connection.wait(list(running), timeout=_TICK_S)
        now = time.perf_counter()
        for conn in ready:
            shard, process, started, _ = running.pop(conn)
            t0 = time.perf_counter()
            try:
                blob = conn.recv_bytes()
                payload = pickle.loads(blob)
            except (EOFError, OSError):
                blob = payload = None
            sharding["transport_s"] += time.perf_counter() - t0
            conn.close()
            process.join()
            if payload is None:
                emit("worker-crashed", shard=shard.index, keys=shard.keys,
                     exitcode=process.exitcode,
                     attempt=attempts[shard.index])
                fail_or_retry(shard, "worker crashed (exitcode %s)"
                              % (process.exitcode,))
                continue
            sharding["result_bytes"] += len(blob)
            completed_s.append(now - started)
            _merge_payload(by_key, payload, attempts[shard.index],
                           "pid:%d" % process.pid, shard.index, sharding)

        now = time.perf_counter()
        for conn, state in list(running.items()):
            shard, process, started, flagged = state
            run_for = now - started
            if timeout_s is not None and run_for > timeout_s:
                process.terminate()
                process.join()
                del running[conn]
                conn.close()
                emit("shard-timeout", shard=shard.index, keys=shard.keys,
                     after_s=run_for, attempt=attempts[shard.index])
                fail_or_retry(shard, "timed out after %.2fs" % run_for)
            elif not flagged and completed_s and run_for > straggler_min_s \
                    and run_for > straggler_factor * max(
                        statistics.median(completed_s), 1e-9):
                state[3] = True
                emit("straggler-detected", shard=shard.index,
                     keys=shard.keys, running_s=run_for,
                     median_s=statistics.median(completed_s))
    return by_key


class _PoolWorker:
    """Parent-side bookkeeping for one persistent worker process."""

    __slots__ = ("process", "shard", "started", "flagged", "spawned_at",
                 "ready")

    def __init__(self, process, spawned_at):
        self.process = process
        self.shard = None          # shard currently running, if any
        self.started = 0.0         # when that shard was dispatched
        self.flagged = False       # straggler-flagged for that shard
        self.spawned_at = spawned_at
        self.ready = False         # has the READY frame arrived yet


def _execute_pool(plan, jobs, timeout_s, retries,
                  straggler_factor, straggler_min_s, emit, sharding):
    """Persistent pool: at most ``jobs`` long-lived workers, each
    executing many shards with warm process-global caches."""
    ctx = multiprocessing.get_context()
    pending = deque(plan.shards)
    attempts = {shard.index: 0 for shard in plan.shards}
    by_key = {}
    completed_s = []
    workers = {}        # conn -> _PoolWorker
    fail_or_retry = _fail_or_retry_fn(attempts, retries, pending, by_key,
                                      emit)

    def spawn():
        parent_conn, child_conn = ctx.Pipe()
        t0 = time.perf_counter()
        process = ctx.Process(target=_pool_worker, args=(child_conn,))
        process.daemon = True
        process.start()
        child_conn.close()
        workers[parent_conn] = _PoolWorker(process, t0)
        sharding["workers_spawned"] += 1

    def retire(conn, worker, kill=False):
        del workers[conn]
        if kill:
            worker.process.terminate()
        worker.process.join()
        conn.close()

    def dispatch(conn, worker):
        shard = pending.popleft()
        attempts[shard.index] += 1
        t0 = time.perf_counter()
        blob = pickle.dumps(shard, pickle.HIGHEST_PROTOCOL)
        conn.send_bytes(blob)
        sharding["transport_s"] += time.perf_counter() - t0
        sharding["dispatch_bytes"] += len(blob)
        worker.shard = shard
        worker.started = time.perf_counter()
        worker.flagged = False

    while pending or any(w.shard is not None for w in workers.values()):
        busy = sum(1 for w in workers.values() if w.shard is not None)
        while len(workers) < min(jobs, busy + len(pending)):
            spawn()
        for conn, worker in list(workers.items()):
            if not pending:
                break
            if worker.ready and worker.shard is None:
                dispatch(conn, worker)

        ready = connection.wait(list(workers), timeout=_TICK_S)
        now = time.perf_counter()
        for conn in ready:
            worker = workers.get(conn)
            if worker is None:
                continue
            t0 = time.perf_counter()
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                shard = worker.shard
                retire(conn, worker)
                if shard is not None:
                    emit("worker-crashed", shard=shard.index,
                         keys=shard.keys,
                         exitcode=worker.process.exitcode,
                         attempt=attempts[shard.index])
                    fail_or_retry(shard, "worker crashed (exitcode %s)"
                                  % (worker.process.exitcode,))
                continue
            if not worker.ready:
                worker.ready = True
                sharding["spawn_s"] += now - worker.spawned_at
                continue
            payload = pickle.loads(blob)
            sharding["transport_s"] += time.perf_counter() - t0
            sharding["result_bytes"] += len(blob)
            shard = worker.shard
            worker.shard = None
            completed_s.append(now - worker.started)
            _merge_payload(by_key, payload, attempts[shard.index],
                           "pid:%d" % worker.process.pid, shard.index,
                           sharding)

        now = time.perf_counter()
        for conn, worker in list(workers.items()):
            if worker.shard is None:
                continue
            run_for = now - worker.started
            if timeout_s is not None and run_for > timeout_s:
                shard = worker.shard
                retire(conn, worker, kill=True)
                emit("shard-timeout", shard=shard.index, keys=shard.keys,
                     after_s=run_for, attempt=attempts[shard.index])
                fail_or_retry(shard, "timed out after %.2fs" % run_for)
            elif not worker.flagged and completed_s \
                    and run_for > straggler_min_s \
                    and run_for > straggler_factor * max(
                        statistics.median(completed_s), 1e-9):
                worker.flagged = True
                emit("straggler-detected", shard=worker.shard.index,
                     keys=worker.shard.keys, running_s=run_for,
                     median_s=statistics.median(completed_s))

    for conn, worker in workers.items():
        try:
            conn.send_bytes(_SHUTDOWN)
        except (BrokenPipeError, OSError):
            pass
    for conn, worker in workers.items():
        worker.process.join()
        conn.close()
    return by_key
