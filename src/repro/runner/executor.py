"""The shard executor: serial by default, a process pool on request.

``execute(units, jobs=N)`` runs every :class:`~repro.runner.plan.WorkUnit`
and returns a :class:`RunReport` whose results are re-sorted into the
plan's submission order, so the aggregated output is byte-identical
whatever ``jobs`` was and whichever worker finished first.

* ``jobs=1`` (the default) runs everything in-process with no
  ``multiprocessing`` machinery at all — the path the determinism
  tooling audits, and the baseline the differential tests compare
  against.
* ``jobs>1`` dispatches shards to at most ``jobs`` concurrent worker
  processes.  A worker that raises reports a per-unit error; a worker
  that *dies* (segfault, ``os._exit``, OOM kill) fails only its own
  shard, which is retried up to ``retries`` times before the shard is
  marked failed.  Shards exceeding ``timeout_s`` are terminated and
  retried the same way.  A shard still running long after the median
  completed shard time is flagged as a straggler (diagnostic event
  only; it is allowed to finish).

Failures never silently truncate a run: :meth:`RunReport.values`
raises :class:`RunnerError` listing every failed shard key.

Wall-clock is inherently part of this module's contract (timeouts,
straggler detection, utilization counters); every *modelled* quantity
in the work units themselves still comes from the cycle counter.
"""

import multiprocessing
import statistics
# fidelint: ignore[FID007] -- the executor schedules and measures host
# wall-clock (shard timeouts, straggler detection, utilization); it
# never feeds time into modelled results, which remain pure functions
# of their seeds.
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.common.errors import ReproError
from repro.runner.plan import ShardPlan

#: Parent poll cadence while workers run (seconds).
_TICK_S = 0.05


class RunnerError(ReproError):
    """A shard failed after exhausting its retry budget."""


@dataclass
class ShardResult:
    """Outcome of one work unit, wherever it ran."""

    key: object
    ok: bool
    value: object = None
    error: str = ""
    elapsed_s: float = 0.0
    attempts: int = 1
    worker: str = "serial"


@dataclass
class RunReport:
    """Everything one ``execute`` call observed.

    ``results`` is in plan submission order — the deterministic merge.
    ``events`` (crashes, retries, timeouts, stragglers) are diagnostics
    and may legitimately differ between runs; nothing deterministic may
    be derived from them.
    """

    jobs: int
    results: list
    wall_s: float = 0.0
    busy_s: float = 0.0
    events: list = field(default_factory=list)

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    def values(self):
        """The unit return values in plan order; raises on any failure."""
        bad = self.failed
        if bad:
            raise RunnerError(
                "%d/%d shards failed: %s" % (
                    len(bad), len(self.results),
                    "; ".join("%r: %s" % (r.key, r.error.strip().splitlines()[-1]
                                          if r.error else "unknown")
                              for r in bad[:5])))
        return [r.value for r in self.results]

    def utilization(self):
        """Busy worker time over available worker time, 0..1."""
        if self.wall_s <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def shard_counters(self):
        """JSON-able per-shard wall-clock counters for bench artifacts."""
        return [{"key": str(r.key), "ok": r.ok, "elapsed_s": r.elapsed_s,
                 "attempts": r.attempts, "worker": r.worker}
                for r in self.results]


def _shard_worker(conn, shard):
    """Child-process entry: run every unit, report per-unit outcomes.

    Clean exceptions are caught per unit so one bad seed cannot take
    its shard-mates down with it; only a hard death (crash, kill,
    unpicklable result) loses the whole shard attempt.
    """
    out = []
    for unit in shard.units:
        t0 = time.perf_counter()
        try:
            value = unit.call()
            out.append((unit.key, True, value, "",
                        time.perf_counter() - t0))
        except Exception:
            out.append((unit.key, False, None, traceback.format_exc(),
                        time.perf_counter() - t0))
    conn.send(out)
    conn.close()


def execute(units_or_plan, jobs=1, timeout_s=None, retries=1,
            straggler_factor=4.0, straggler_min_s=1.0, on_event=None):
    """Run a plan (or a plain iterable of units) and merge the results.

    ``on_event(kind, details)``, when given, mirrors every diagnostic
    event as it happens (for live progress reporting).
    """
    if isinstance(units_or_plan, ShardPlan):
        plan = units_or_plan
    else:
        plan = ShardPlan.single(list(units_or_plan))
    events = []

    def emit(kind, **details):
        events.append((kind, details))
        if on_event is not None:
            on_event(kind, details)

    t_start = time.perf_counter()
    if jobs <= 1:
        by_key = _execute_serial(plan)
        jobs = 1
    else:
        by_key = _execute_parallel(plan, jobs, timeout_s, retries,
                                   straggler_factor, straggler_min_s, emit)
    wall_s = time.perf_counter() - t_start
    ordered = [by_key[key] for key in plan.key_order]
    busy_s = sum(r.elapsed_s for r in ordered)
    return RunReport(jobs=jobs, results=ordered, wall_s=wall_s,
                     busy_s=busy_s, events=events)


def _execute_serial(plan):
    by_key = {}
    for shard in plan.shards:
        for unit in shard.units:
            t0 = time.perf_counter()
            try:
                value = unit.call()
                by_key[unit.key] = ShardResult(
                    unit.key, True, value,
                    elapsed_s=time.perf_counter() - t0)
            except Exception:
                by_key[unit.key] = ShardResult(
                    unit.key, False, error=traceback.format_exc(),
                    elapsed_s=time.perf_counter() - t0)
    return by_key


def _execute_parallel(plan, jobs, timeout_s, retries,
                      straggler_factor, straggler_min_s, emit):
    ctx = multiprocessing.get_context()
    pending = deque(plan.shards)
    attempts = {shard.index: 0 for shard in plan.shards}
    running = {}        # conn -> [shard, process, started_at, flagged]
    by_key = {}
    completed_s = []    # parent-side shard wall times, for the median

    def fail_or_retry(shard, reason):
        if attempts[shard.index] <= retries:
            emit("shard-retried", shard=shard.index, keys=shard.keys,
                 attempt=attempts[shard.index], reason=reason)
            pending.append(shard)
            return
        emit("shard-failed", shard=shard.index, keys=shard.keys,
             attempts=attempts[shard.index], reason=reason)
        for unit in shard.units:
            by_key[unit.key] = ShardResult(
                unit.key, False, error=reason,
                attempts=attempts[shard.index], worker="dead")

    while pending or running:
        while pending and len(running) < jobs:
            shard = pending.popleft()
            attempts[shard.index] += 1
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(target=_shard_worker,
                                  args=(child_conn, shard))
            process.daemon = True
            process.start()
            child_conn.close()
            running[parent_conn] = [shard, process,
                                    time.perf_counter(), False]

        ready = connection.wait(list(running), timeout=_TICK_S)
        now = time.perf_counter()
        for conn in ready:
            shard, process, started, _ = running.pop(conn)
            try:
                payload = conn.recv()
            except EOFError:
                payload = None
            conn.close()
            process.join()
            if payload is None:
                emit("worker-crashed", shard=shard.index, keys=shard.keys,
                     exitcode=process.exitcode,
                     attempt=attempts[shard.index])
                fail_or_retry(shard, "worker crashed (exitcode %s)"
                              % (process.exitcode,))
                continue
            completed_s.append(now - started)
            for key, ok, value, error, unit_elapsed in payload:
                by_key[key] = ShardResult(
                    key, ok, value, error, unit_elapsed,
                    attempts[shard.index], worker="pid:%d" % process.pid)

        now = time.perf_counter()
        for conn, state in list(running.items()):
            shard, process, started, flagged = state
            run_for = now - started
            if timeout_s is not None and run_for > timeout_s:
                process.terminate()
                process.join()
                del running[conn]
                conn.close()
                emit("shard-timeout", shard=shard.index, keys=shard.keys,
                     after_s=run_for, attempt=attempts[shard.index])
                fail_or_retry(shard, "timed out after %.2fs" % run_for)
            elif not flagged and completed_s and run_for > straggler_min_s \
                    and run_for > straggler_factor * max(
                        statistics.median(completed_s), 1e-9):
                state[3] = True
                emit("straggler-detected", shard=shard.index,
                     keys=shard.keys, running_s=run_for,
                     median_s=statistics.median(completed_s))
    return by_key
