"""The security-evaluation attack suite (paper Section 6).

Each module hosts attacks against one surface; ``suite.run_matrix``
executes all of them against a fresh baseline (SEV-only) host and a
fresh Fidelius host, and ``xsa`` reproduces the quantitative advisory
analysis of Section 6.2.
"""

from repro.attacks.base import SECRET, AttackResult, attack, make_victim
from repro.attacks.suite import ALL_ATTACKS, MatrixRow, format_matrix, run_matrix
from repro.attacks.xsa import analyze as analyze_xsa, build_corpus

__all__ = [
    "SECRET",
    "AttackResult",
    "attack",
    "make_victim",
    "ALL_ATTACKS",
    "MatrixRow",
    "format_matrix",
    "run_matrix",
    "analyze_xsa",
    "build_corpus",
]
