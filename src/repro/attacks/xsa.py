"""The Xen Security Advisory corpus analysis (paper Section 6.2).

The paper analyzed 235 XSAs: 58 concern QEMU (out of scope), leaving 177
hypervisor-related.  Of those, Fidelius thwarts the 31 privilege
escalations and 22 information leaks; 14 stem from flaws inside the
guest itself and the remaining 110 are denial-of-service — both outside
the threat model.

We reconstruct a synthetic corpus with that exact composition (the real
advisory texts are not redistributable), each advisory tagged with the
subsystem it lives in, and implement the coverage classifier whose
totals reproduce the paper's quantitative claim: 31/177 = 17.5%
privilege escalations and 22/177 = 12.4% information leaks thwarted.
"""

import enum
import random
from dataclasses import dataclass

TOTAL_XSAS = 235
QEMU_XSAS = 58
HYPERVISOR_XSAS = TOTAL_XSAS - QEMU_XSAS  # 177
PRIV_ESCALATION_XSAS = 31
INFO_LEAK_XSAS = 22
GUEST_INTERNAL_XSAS = 14
DOS_XSAS = HYPERVISOR_XSAS - PRIV_ESCALATION_XSAS - INFO_LEAK_XSAS \
    - GUEST_INTERNAL_XSAS  # 110


class Component(enum.Enum):
    HYPERVISOR = "hypervisor"
    QEMU = "qemu"


class Impact(enum.Enum):
    PRIVILEGE_ESCALATION = "privilege-escalation"
    INFO_LEAK = "information-leak"
    GUEST_INTERNAL = "guest-internal-flaw"
    DENIAL_OF_SERVICE = "denial-of-service"


class Coverage(enum.Enum):
    THWARTED = "thwarted"
    OUT_OF_SCOPE = "out-of-scope"


#: Subsystems a hypervisor advisory can live in; used to attach each
#: synthetic XSA to the Fidelius mechanism that would interpose on it.
_SUBSYSTEMS = {
    Impact.PRIVILEGE_ESCALATION: [
        ("memory/p2m", "PIT policy on NPT updates"),
        ("grant tables", "GIT policy on grant updates"),
        ("page tables", "write-protected page-table-pages"),
        ("x86 emulation", "shadowed VMCB + exit-reason policies"),
        ("privileged instructions", "monopoly + checking loops"),
    ],
    Impact.INFO_LEAK: [
        ("hypercall handlers", "register masking on exit"),
        ("x86 state save", "VMCB shadowing"),
        ("memory/p2m", "guest RAM unmapped from the hypervisor"),
        ("grant tables", "GIT policy on grant updates"),
    ],
    Impact.GUEST_INTERNAL: [
        ("guest kernel", "out of scope: flaw inside the guest"),
    ],
    Impact.DENIAL_OF_SERVICE: [
        ("scheduler", "out of scope: availability"),
        ("interrupt handling", "out of scope: availability"),
        ("memory accounting", "out of scope: availability"),
        ("event channels", "out of scope: availability"),
    ],
}


@dataclass(frozen=True)
class Advisory:
    xsa_id: int
    component: Component
    impact: Impact
    subsystem: str
    mechanism: str


def build_corpus(seed=235):
    """The synthetic 235-advisory corpus with the paper's composition."""
    rng = random.Random(seed)
    advisories = []
    plan = (
        [(Component.QEMU, Impact.DENIAL_OF_SERVICE)] * QEMU_XSAS
        + [(Component.HYPERVISOR, Impact.PRIVILEGE_ESCALATION)]
        * PRIV_ESCALATION_XSAS
        + [(Component.HYPERVISOR, Impact.INFO_LEAK)] * INFO_LEAK_XSAS
        + [(Component.HYPERVISOR, Impact.GUEST_INTERNAL)]
        * GUEST_INTERNAL_XSAS
        + [(Component.HYPERVISOR, Impact.DENIAL_OF_SERVICE)] * DOS_XSAS
    )
    rng.shuffle(plan)
    for xsa_id, (component, impact) in enumerate(plan, start=1):
        if component is Component.QEMU:
            subsystem, mechanism = "qemu device model", \
                "out of scope: device-model process"
        else:
            subsystem, mechanism = rng.choice(_SUBSYSTEMS[impact])
        advisories.append(Advisory(xsa_id, component, impact, subsystem,
                                   mechanism))
    return advisories


def classify(advisory):
    """Fidelius's coverage rule for one advisory (Section 6.2):
    hypervisor-side privilege escalations and information leaks are
    thwarted; QEMU, guest-internal and DoS advisories are out of scope."""
    if advisory.component is Component.QEMU:
        return Coverage.OUT_OF_SCOPE
    if advisory.impact in (Impact.PRIVILEGE_ESCALATION, Impact.INFO_LEAK):
        return Coverage.THWARTED
    return Coverage.OUT_OF_SCOPE


def mechanism_breakdown(corpus=None):
    """Thwarted advisories grouped by the Fidelius mechanism that
    interposes on their subsystem — the 'which defence earns its keep'
    view of the Section 6.2 numbers."""
    corpus = corpus or build_corpus()
    breakdown = {}
    for advisory in corpus:
        if classify(advisory) is Coverage.THWARTED:
            breakdown.setdefault(advisory.mechanism, []).append(advisory)
    return {mechanism: len(items)
            for mechanism, items in sorted(breakdown.items())}


def analyze(corpus=None):
    """The Section 6.2 headline numbers, computed from the corpus."""
    corpus = corpus or build_corpus()
    hypervisor = [a for a in corpus if a.component is Component.HYPERVISOR]
    thwarted = [a for a in hypervisor if classify(a) is Coverage.THWARTED]
    priv = [a for a in thwarted
            if a.impact is Impact.PRIVILEGE_ESCALATION]
    leak = [a for a in thwarted if a.impact is Impact.INFO_LEAK]
    guest = [a for a in hypervisor
             if a.impact is Impact.GUEST_INTERNAL]
    return {
        "total": len(corpus),
        "hypervisor_related": len(hypervisor),
        "privilege_escalation_thwarted": len(priv),
        "info_leak_thwarted": len(leak),
        "guest_internal": len(guest),
        "dos_out_of_scope": len(hypervisor) - len(thwarted) - len(guest),
        "privilege_escalation_pct": 100.0 * len(priv) / len(hypervisor),
        "info_leak_pct": 100.0 * len(leak) / len(hypervisor),
    }
