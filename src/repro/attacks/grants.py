"""Grant-table manipulation attacks (Sections 2.2, 4.3.7).

The grant table is hypervisor-maintained: it "can intentionally
manipulate the grant references (including the access permissions), and
map the shared memory to its conspirator VM, or abuse the permission
systems".
"""

from repro.common.constants import PAGE_SIZE
from repro.attacks.base import attack, make_victim
from repro.attacks.memory import _conspirator
from repro.xen import hypercalls as hc
from repro.xen.grant_table import GrantEntry


def _sharing_victim(system):
    """A victim that legitimately shares one read-only page with dom0
    (declaring it first, as a Fidelius guest would)."""
    domain, ctx, secret_gfn = make_victim(system)
    share_gfn = 10
    ctx.write(share_gfn * PAGE_SIZE, b"read-only bulletin board")
    ctx.hypercall(hc.HC_PRE_SHARING, 0, share_gfn, 1, 1)  # readonly=1
    ref = ctx.hypercall(hc.HC_GRANT_CREATE, 0, share_gfn, 1)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    return domain, ctx, share_gfn, ref


@attack("grant-permission-widening", "§2.2 grant permission abuse",
        baseline_succeeds=True)
def grant_permission_widening(system):
    """The victim granted read-only; the hypervisor rewrites the entry
    writable and scribbles over the shared page."""
    domain, ctx, share_gfn, ref = _sharing_victim(system)
    hypervisor = system.hypervisor
    widened = GrantEntry(permit=True, readonly=False,
                         target_domid=0, gfn=share_gfn)
    domain.grant_table.write_via(ref, widened, hypervisor.word_writer)
    # dom0 maps it writable and defaces it
    status = hypervisor.grant_map(hypervisor.dom0, domain.domid, ref,
                                  dest_gfn=5, want_write=True)
    if status != hc.E_OK:
        return False, "map attempt returned %#x" % status
    hpa = hypervisor.dom0.npt.hpa_of(5 * PAGE_SIZE, write=True)
    system.machine.memctrl.write(hpa, b"DEFACED!")
    tampered = ctx.read(share_gfn * PAGE_SIZE, 8)
    return tampered == b"DEFACED!", "victim page overwritten via widened grant"


@attack("grant-redirect-to-conspirator", "§2.2 grant redirection",
        baseline_succeeds=True)
def grant_redirect_to_conspirator(system):
    """The victim granted a page to dom0; the hypervisor rewrites the
    entry's target to a conspirator guest which then maps it."""
    domain, ctx, share_gfn, ref = _sharing_victim(system)
    conspirator, evil_ctx = _conspirator(system)
    hypervisor = system.hypervisor
    redirected = GrantEntry(permit=True, readonly=True,
                            target_domid=conspirator.domid, gfn=share_gfn)
    domain.grant_table.write_via(ref, redirected, hypervisor.word_writer)
    status = hypervisor.grant_map(conspirator, domain.domid, ref,
                                  dest_gfn=4, want_write=False)
    if status != hc.E_OK:
        return False, "conspirator map returned %#x" % status
    data = evil_ctx.read(4 * PAGE_SIZE, 24)
    return data == b"read-only bulletin board", \
        "conspirator mapped the redirected grant"


@attack("grant-forgery", "§4.3.7 GIT-checked grant creation",
        baseline_succeeds=True)
def grant_forgery(system):
    """The hypervisor forges a brand-new grant entry for a page the
    victim never offered (the one holding the secret)."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    hypervisor = system.hypervisor
    forged = GrantEntry(permit=True, readonly=False,
                        target_domid=0, gfn=secret_gfn)
    free_ref = domain.grant_table.find_free_ref()
    domain.grant_table.write_via(free_ref, forged, hypervisor.word_writer)
    status = hypervisor.grant_map(hypervisor.dom0, domain.domid, free_ref,
                                  dest_gfn=6, want_write=False)
    return status == hc.E_OK, "forged grant mapped with status %#x" % status
