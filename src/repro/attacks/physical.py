"""Physical attacks (Section 6.1): cold boot / bus snooping, and
Rowhammer (Section 6.2 'violating memory integrity')."""

from repro.common.constants import PAGE_SIZE
from repro.attacks.base import SECRET, attack, make_victim
from repro.xen import hypercalls as hc


@attack("cold-boot-dump", "§6.1 cold boot / bus snooping",
        baseline_succeeds=False)
def cold_boot_dump(system):
    """Dump the DRAM and grep for the victim's secret.  Defended by the
    hardware encryption itself (SEV), on the baseline and under
    Fidelius alike; an *unencrypted* guest would leak (see the
    no-SEV variant in the test suite)."""
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    dump = system.machine.cold_boot_dump()
    found = any(SECRET in frame for frame in dump.values())
    return found, "searched %d frames" % len(dump)


def cold_boot_against_unencrypted_guest(system):
    """The contrast case: the same dump against a guest with no memory
    encryption finds the secret immediately."""
    domain, ctx = system.create_plain_guest("naked", guest_frames=16)
    ctx.write(3 * PAGE_SIZE, SECRET)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    dump = system.machine.cold_boot_dump()
    return any(SECRET in frame for frame in dump.values())


@attack("rowhammer-bit-flip", "§6.2 Rowhammer / §8 integrity gap",
        baseline_succeeds=True, fidelius_blocks=False)
def rowhammer_bit_flip(system):
    """Flip bits in the victim's encrypted frame from an adjacent row.

    Fidelius "cannot strictly eradicate this malevolent bit flipping" —
    but because the memory is encrypted, the flip decrypts to garbage
    rather than an attacker-chosen value, so it cannot be *exploited*
    for targeted corruption.  Success here means only 'the data
    changed'; see the BMT extension for detection."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    hpa = system.hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    victim_byte = system.machine.memory.read(hpa, 1)[0]
    system.machine.memory.write(hpa, bytes([victim_byte ^ 0x10]))
    system.machine.memctrl.flush_cache()
    after = ctx.read(secret_gfn * PAGE_SIZE, len(SECRET))
    corrupted = after != SECRET
    attacker_controlled = after[:1] == bytes([SECRET[0] ^ 0x10])
    detail = ("corruption silent, not attacker-controlled"
              if corrupted and not attacker_controlled else "controlled flip")
    return corrupted, detail


def rowhammer_with_bmt(system):
    """The Section 8 fix: the same flip with the Bonsai-Merkle-Tree
    extension armed is detected before the guest consumes the data."""
    from repro.core.hwext import BonsaiMerkleTree
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    hypervisor = system.hypervisor
    covered = [hypervisor.guest_frame_hpfn(domain, g)
               for g in range(domain.guest_frames)]
    tree = BonsaiMerkleTree(system.machine, covered)
    hpa = hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    victim_byte = system.machine.memory.read(hpa, 1)[0]
    system.machine.memory.write(hpa, bytes([victim_byte ^ 0x10]))
    return tree.verify() == [hpa // PAGE_SIZE]
