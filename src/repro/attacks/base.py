"""Attack-program framework for the security evaluation (Section 6).

Every attack is a function ``attack(system) -> AttackResult`` that runs
the *same primitive layer* a real malicious hypervisor / driver domain
would: CPU loads and stores through the host address space, direct
firmware commands, NPT/grant-table writes, DMA, raw DRAM access for
physical attacks.  An attack either obtains its goal (``succeeded``) or
is stopped — by an exception from the isolation machinery or because the
data it exfiltrated is ciphertext.

The evaluation's claim structure is captured by ``expectation``: each
attack states how it should fare against the baseline SEV-only host and
against the Fidelius host.
"""

import functools
from dataclasses import dataclass

from repro.common.errors import (
    AttackFailed,
    GateViolation,
    PageFault,
    PolicyViolation,
    SevError,
)
from repro.hw.iommu import IommuFault

#: A secret the victim guest manipulates; attacks hunt for these bytes.
SECRET = b"CREDIT-CARD:4242-4242-4242-4242!"


@dataclass(frozen=True)
class AttackResult:
    name: str
    paper_ref: str
    succeeded: bool
    blocked_by: str = ""
    detail: str = ""

    @property
    def blocked(self):
        return not self.succeeded


class attack:  # noqa: N801 - decorator reads like a keyword
    """Decorator wiring an attack body into the framework.

    The body returns ``(succeeded, detail)`` or raises one of the
    defence exceptions, which are translated into a blocked result.
    """

    registry = {}

    def __init__(self, name, paper_ref, baseline_succeeds,
                 fidelius_blocks=True):
        self.name = name
        self.paper_ref = paper_ref
        self.baseline_succeeds = baseline_succeeds
        self.fidelius_blocks = fidelius_blocks

    def __call__(self, fn):
        @functools.wraps(fn)
        def runner(system, **kwargs):
            try:
                succeeded, detail = fn(system, **kwargs)
            except PolicyViolation as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by=type(exc).__name__,
                                    detail=str(exc))
            except GateViolation as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by="GateViolation",
                                    detail=str(exc))
            except PageFault as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by="PageFault", detail=str(exc))
            except SevError as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by="SevError", detail=str(exc))
            except IommuFault as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by="IommuFault",
                                    detail=str(exc))
            except AttackFailed as exc:
                return AttackResult(self.name, self.paper_ref, False,
                                    blocked_by="AttackFailed",
                                    detail=str(exc))
            blocked_by = "" if succeeded else "data-is-ciphertext"
            return AttackResult(self.name, self.paper_ref, succeeded,
                                blocked_by=blocked_by, detail=detail)

        runner.attack_name = self.name
        runner.paper_ref = self.paper_ref
        runner.baseline_succeeds = self.baseline_succeeds
        runner.fidelius_blocks = self.fidelius_blocks
        attack.registry[self.name] = runner
        return runner


def make_victim(system, secret=SECRET, owner_seed=0xA11CE):
    """A victim guest holding ``secret`` in encrypted memory.

    On a Fidelius host: a fully protected guest booted from an encrypted
    image.  On the baseline: a plain-SEV guest (the best the hardware
    alone offers).  Returns (domain, ctx, secret_gfn).
    """
    from repro.system import GuestOwner
    secret_gfn = 6
    if system.protected:
        owner = GuestOwner(seed=owner_seed)
        domain, ctx = system.boot_protected_guest(
            "victim", owner, payload=b"victim app", guest_frames=32)
    else:
        domain, ctx = system.create_baseline_sev_guest(
            "victim", guest_frames=32)
    ctx.set_page_encrypted(secret_gfn)
    ctx.write(secret_gfn * 4096, secret)
    return domain, ctx, secret_gfn
