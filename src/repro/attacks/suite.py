"""The full attack matrix: every attack against both configurations.

Reproduces the claim structure of the paper's Section 6: each attack
succeeds against the SEV-only baseline exactly when the paper says the
surface exists, and is blocked under Fidelius exactly when the paper
claims the defence — with the two honest exceptions the paper itself
concedes to hardware (DMA replay and Rowhammer, Section 8).
"""

from dataclasses import dataclass

from repro.attacks import control, grants, io, keys, memory, physical, state
from repro.runner import WorkUnit, execute
from repro.system import System

#: Every registered attack, in a stable presentation order.
ALL_ATTACKS = [
    state.register_steal,
    state.register_tamper,
    state.vmcb_read_guest_state,
    state.vmcb_disable_protection,
    state.vmcb_rip_hijack,
    state.iago_return_value,
    memory.hypervisor_direct_read,
    memory.inter_vm_remap_cache_leak,
    memory.gate_laundered_remap,
    memory.cpu_ciphertext_replay,
    memory.dma_ciphertext_replay,
    keys.handle_asid_keyshare,
    keys.sev_command_forgery,
    keys.dbg_decrypt_abuse,
    keys.sev_metadata_probe,
    grants.grant_permission_widening,
    grants.grant_redirect_to_conspirator,
    grants.grant_forgery,
    io.driver_domain_io_snoop,
    io.disk_at_rest_theft,
    io.dma_buffer_snoop,
    control.clear_wp_and_rewrite_npt,
    control.rop_to_monopolized_instruction,
    control.wrmsr_disable_nx,
    control.forged_vmcb_vmrun,
    control.exec_injected_code,
    physical.cold_boot_dump,
    physical.rowhammer_bit_flip,
]


@dataclass(frozen=True)
class MatrixRow:
    name: str
    paper_ref: str
    baseline_succeeded: bool
    fidelius_succeeded: bool
    fidelius_blocked_by: str
    expected_baseline: bool
    expected_fidelius_blocked: bool
    iommu_succeeded: bool = None  # only when the sweep includes it

    @property
    def as_expected(self):
        baseline_ok = self.baseline_succeeded == self.expected_baseline
        fidelius_ok = (not self.fidelius_succeeded) == \
            self.expected_fidelius_blocked
        return baseline_ok and fidelius_ok


def _fresh_system(protected, seed, iommu=False):
    return System.create(fidelius=protected, frames=2048, seed=seed,
                         iommu=iommu)


def _matrix_row(index, attack_fn, include_iommu):
    """One attack case against fresh hosts — the shardable work unit.

    Each case builds its own seeded systems, so the matrix is a list of
    shared-nothing simulations the runner can spread across workers.
    """
    baseline = attack_fn(_fresh_system(False, seed=1000 + index))
    fidelius = attack_fn(_fresh_system(True, seed=2000 + index))
    iommu_succeeded = None
    if include_iommu:
        iommu_result = attack_fn(
            _fresh_system(True, seed=3000 + index, iommu=True))
        iommu_succeeded = iommu_result.succeeded
    return MatrixRow(
        name=attack_fn.attack_name,
        paper_ref=attack_fn.paper_ref,
        baseline_succeeded=baseline.succeeded,
        fidelius_succeeded=fidelius.succeeded,
        fidelius_blocked_by=fidelius.blocked_by,
        expected_baseline=attack_fn.baseline_succeeds,
        expected_fidelius_blocked=attack_fn.fidelius_blocks,
        iommu_succeeded=iommu_succeeded,
    )


def run_matrix(frames=2048, attacks=None, include_iommu=False, jobs=1,
               reuse_workers=True):
    """Run every attack against a fresh baseline and a fresh Fidelius
    host; with ``include_iommu`` a third column runs against a Fidelius
    host with the IOMMU extension armed.  Returns :class:`MatrixRow`\\ s,
    always in registration order — attack cases shard across ``jobs``
    workers and the runner re-sorts the rows, so the printed matrix is
    byte-identical to a serial run."""
    units = [WorkUnit.of(index, _matrix_row, index, attack_fn,
                         include_iommu)
             for index, attack_fn in enumerate(attacks or ALL_ATTACKS)]
    return execute(units, jobs=jobs, reuse_workers=reuse_workers).values()


def format_matrix(rows):
    """A printable security matrix (benchmark E9)."""
    with_iommu = any(row.iommu_succeeded is not None for row in rows)
    columns = "%-34s %-10s %-10s" + ("%-10s " if with_iommu else "") \
        + "%-24s %s"
    header_fields = ["attack", "baseline", "fidelius"]
    if with_iommu:
        header_fields.append("+iommu")
    header_fields += ["blocked by", "as expected"]
    header = columns % tuple(header_fields)
    lines = [header, "-" * len(header)]
    for row in rows:
        fields = [
            row.name,
            "pwned" if row.baseline_succeeded else "held",
            "pwned" if row.fidelius_succeeded else "blocked",
        ]
        if with_iommu:
            fields.append("-" if row.iommu_succeeded is None
                          else ("pwned" if row.iommu_succeeded
                                else "blocked"))
        fields += [row.fidelius_blocked_by or "-",
                   "yes" if row.as_expected else "NO"]
        lines.append(columns % tuple(fields))
    return "\n".join(lines)
