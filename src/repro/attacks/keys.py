"""Key-management abuse (Section 2.2, "remaining problems even with
SEV-ES"): the handle-ASID relationship is hypervisor-managed, so the
victim's K_vek can be handed to a collusive guest."""

from repro.common.constants import PAGE_SIZE
from repro.attacks.base import SECRET, attack, make_victim
from repro.attacks.memory import _conspirator
from repro.xen import hypercalls as hc


@attack("handle-asid-keyshare", "§2.2 key sharing abuse",
        baseline_succeeds=True)
def handle_asid_keyshare(system):
    """DEACTIVATE the conspirator, ACTIVATE the *victim's* handle on the
    conspirator's ASID, remap the victim frame — the conspirator now
    decrypts with the victim's key."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    conspirator, evil_ctx = _conspirator(system)
    firmware = system.firmware
    hypervisor = system.hypervisor

    # the malicious hypervisor issues the commands directly
    firmware.deactivate(conspirator.sev_handle)
    firmware.deactivate(domain.sev_handle)
    firmware.activate(domain.sev_handle, conspirator.asid)

    victim_pfn = hypervisor.guest_frame_hpfn(domain, secret_gfn)
    dest_gfn = 4
    hypervisor.unmap_npt(conspirator, dest_gfn)
    hypervisor.fill_npt(conspirator, dest_gfn, victim_pfn, writable=False)
    evil_ctx.set_page_encrypted(dest_gfn)
    system.machine.memctrl.flush_cache()  # defeat the cache channel: key abuse only
    data = evil_ctx.read(dest_gfn * PAGE_SIZE, len(SECRET))
    return SECRET in data, "conspirator decrypted with the victim's K_vek"


@attack("sev-command-forgery", "§4.2.3 self-maintained SEV metadata",
        baseline_succeeds=True)
def sev_command_forgery(system):
    """Issue raw SEV commands (DEACTIVATE of the victim) straight at the
    firmware — under Fidelius the command interface is only reachable
    through the type 3 gate."""
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    system.firmware.deactivate(domain.sev_handle)
    still_active = system.machine.memctrl.slot_installed(domain.asid)
    return not still_active, "victim key slot uninstalled by forged command"


@attack("dbg-decrypt-abuse", "§4.2.3 gated SEV commands (DBG_DECRYPT)",
        baseline_succeeds=True)
def dbg_decrypt_abuse(system):
    """Abuse the firmware's debug facility to decrypt the victim's
    memory.  On the baseline, a victim whose owner forgot the NODBG
    policy bit is an open book; under Fidelius the command interface
    itself is unreachable outside the gates."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    pa = system.hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    plaintext = system.firmware.dbg_decrypt(domain.sev_handle, pa,
                                            len(SECRET))
    return SECRET in plaintext, "debug facility decrypted guest memory"


@attack("sev-metadata-probe", "§4.2.3 SEV metadata unmapped",
        baseline_succeeds=False)
def sev_metadata_probe(system):
    """Read the handle bookkeeping out of memory.  The baseline has no
    such metadata region (trivially nothing to find); under Fidelius the
    pages exist but are unmapped — the probe must fault."""
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    if not system.protected:
        return False, "no metadata region on the baseline"
    pa = system.fidelius.sev_metadata_pfns[0] * PAGE_SIZE
    blob = system.machine.cpu.load(pa, 64)
    return b"handle" in blob, "read SEV metadata bytes"
