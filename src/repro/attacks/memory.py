"""Memory-privacy and memory-integrity attacks (paper Sections 2.2, 6.2).

Four attacks on the guest's memory through the hypervisor's control of
the mapping structures and of the raw frames:

* direct mapping + read of guest RAM;
* the inter-VM remapping attack, harvesting plaintext from the
  PA-indexed cache through a conspirator VM;
* the in-place ciphertext replay of Hetzelt & Buhren via the CPU;
* the same replay via DMA — which the paper concedes software cannot
  stop (Section 8's case for hardware integrity).
"""

from repro.common.constants import PAGE_SIZE
from repro.attacks.base import SECRET, attack, make_victim
from repro.xen import hypercalls as hc


@attack("hypervisor-direct-read", "§6.2 'Breaking memory privacy' (1)",
        baseline_succeeds=False)
def hypervisor_direct_read(system):
    """The hypervisor maps (or already has mapped) the victim's frame in
    its own space and reads it.  Against plain SEV the read *lands* but
    yields ciphertext; under Fidelius the access itself faults."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    hpa = system.hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    data = system.machine.cpu.load(hpa, len(SECRET))
    return SECRET in data, "read %d bytes from guest frame" % len(data)


@attack("inter-vm-remap-cache-leak", "§6.2 'Breaking memory privacy' (2)",
        baseline_succeeds=True)
def inter_vm_remap_cache_leak(system):
    """Map the victim's hot frame into a conspirator's NPT; the
    conspirator's encrypted read hits the PA-indexed plaintext cache."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    conspirator, evil_ctx = _conspirator(system)
    hypervisor = system.hypervisor
    victim_pfn = hypervisor.guest_frame_hpfn(domain, secret_gfn)
    dest_gfn = 4
    hypervisor.unmap_npt(conspirator, dest_gfn)
    hypervisor.fill_npt(conspirator, dest_gfn, victim_pfn, writable=False)
    evil_ctx.set_page_encrypted(dest_gfn)  # C-bit read: consult the cache
    data = evil_ctx.read(dest_gfn * PAGE_SIZE, len(SECRET))
    return SECRET in data, "conspirator read the victim's line"


@attack("cpu-ciphertext-replay", "§2.2 replay attack [Hetzelt-Buhren]",
        baseline_succeeds=True)
def cpu_ciphertext_replay(system):
    """Record the ciphertext of a page holding an *old* value, let the
    guest update it, then write the stale ciphertext back in place
    through the CPU: the guest now reads the old value again."""
    domain, ctx, secret_gfn = make_victim(system, secret=b"password=OLD!" + bytes(19))
    hpa = system.hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    ctx.hypercall(hc.HC_SCHED_YIELD)
    stale = system.machine.memory.read(hpa, 32)  # snapshot (any reader)
    ctx.write(secret_gfn * PAGE_SIZE, b"password=NEW!" + bytes(19))
    ctx.hypercall(hc.HC_SCHED_YIELD)
    # the write that must fault under Fidelius: guest RAM is unmapped
    system.machine.cpu.store(hpa, stale)
    system.machine.memctrl.flush_cache()
    replayed = ctx.read(secret_gfn * PAGE_SIZE, 13)
    return replayed == b"password=OLD!", "guest observed %r" % replayed


@attack("dma-ciphertext-replay", "§8 integrity gap (Rowhammer / I/O tamper)",
        baseline_succeeds=True, fidelius_blocks=False)
def dma_ciphertext_replay(system):
    """The same replay through the DMA port.  Software isolation cannot
    intercept device-side writes: the paper's own Section 8 concedes
    this and proposes hardware integrity (the BMT extension)."""
    domain, ctx, secret_gfn = make_victim(system, secret=b"password=OLD!" + bytes(19))
    hpa = system.hypervisor.guest_frame_hpfn(domain, secret_gfn) * PAGE_SIZE
    ctx.hypercall(hc.HC_SCHED_YIELD)
    # the malicious device works with bus addresses; without an IOMMU
    # they are the physical addresses themselves
    stale = system.machine.dma.read(hpa, 32)
    ctx.write(secret_gfn * PAGE_SIZE, b"password=NEW!" + bytes(19))
    ctx.hypercall(hc.HC_SCHED_YIELD)
    system.machine.dma.write(hpa, stale)
    replayed = ctx.read(secret_gfn * PAGE_SIZE, 13)
    return replayed == b"password=OLD!", "guest observed %r" % replayed


def _conspirator(system):
    """A conspirator guest colluding with the hypervisor.

    It is created through the *legitimate* launch channel (on a
    Fidelius host, SEV launches run inside Fidelius's gates) — the
    collusion happens afterwards.
    """
    domain = system.hypervisor.create_domain("conspirator", 16, sev=True)
    if system.protected:
        fid = system.fidelius
        handle = fid.firmware_call("launch_start")
        fid.firmware_call("launch_finish", handle)
        fid.firmware_call("activate", handle, domain.asid)
    else:
        handle = system.firmware.launch_start()
        system.firmware.launch_finish(handle)
        system.firmware.activate(handle, domain.asid)
    domain.sev_handle = handle
    return domain, domain.context()


@attack("gate-laundered-remap", "§4.2.2 NPT write-protection",
        baseline_succeeds=True)
def gate_laundered_remap(system):
    """A cleverer hypervisor routes the malicious NPT update through the
    legitimate gated path instead of writing the entry raw — the PIT
    policy inside the gate must catch it anyway."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    conspirator, evil_ctx = _conspirator(system)
    hypervisor = system.hypervisor
    victim_pfn = hypervisor.guest_frame_hpfn(domain, secret_gfn)
    dest_gfn = 4
    hypervisor.unmap_npt(conspirator, dest_gfn)
    # goes through word_writer: on baseline a plain store, under
    # Fidelius the type 1 gate with the PIT/GIT policies
    hypervisor.fill_npt(conspirator, dest_gfn, victim_pfn, writable=True)
    evil_ctx.set_page_encrypted(dest_gfn)
    data = evil_ctx.read(dest_gfn * PAGE_SIZE, len(SECRET))
    return SECRET in data, "gated remap let the conspirator read"
