"""Lesion study instrumentation: surgically disable one Fidelius
mechanism at a time.

Each lesion models a hypothetical deployment that shipped without one
defence, so the evaluation can show every mechanism is load-bearing:
with the lesion applied, exactly the attacks that mechanism stops come
back, and nothing else changes.  (Purely evaluation tooling — nothing
here is reachable from the production code paths.)
"""

from repro.common.types import PrivOp

#: lesion name -> (description, attack expected to break through)
LESION_CATALOG = {
    "no-shadowing": (
        "exit boundary keeps baseline Xen register save/restore",
        "register-steal",
    ),
    "no-binary-rewrite": (
        "Xen text keeps its own unguarded privileged-instruction copies",
        "clear-wp-and-rewrite-npt",
    ),
    "no-npt-policy": (
        "NPT updates through the gate are not policy-checked",
        "gate-laundered-remap",
    ),
    "no-git-policy": (
        "grant updates through the gate are not checked against the GIT",
        "grant-permission-widening",
    ),
    "no-guest-unmapping": (
        "protected guests' RAM stays mapped in the hypervisor",
        "cpu-ciphertext-replay",
    ),
    "no-sev-command-gate": (
        "the firmware accepts commands from anywhere",
        "sev-command-forgery",
    ),
}


def apply_lesion(system, name):
    """Disable one mechanism on a Fidelius host; returns the system."""
    fidelius = system.fidelius
    hypervisor = system.hypervisor
    if name == "no-shadowing":
        hypervisor.regs_saver = hypervisor._save_regs_direct
        hypervisor.regs_restorer = hypervisor._restore_regs_direct
    elif name == "no-binary-rewrite":
        _replant_xen_copies(system)
    elif name == "no-npt-policy":
        fidelius.write_policy._check_npt = lambda *args: None
    elif name == "no-git-policy":
        fidelius.write_policy._check_grant = lambda *args: None
        fidelius.write_policy._check_cross_domain = lambda *args: None
    elif name == "no-guest-unmapping":
        _remap_guest_ram(system)
    elif name == "no-sev-command-gate":
        system.firmware.gate_check = None
    else:
        raise KeyError("unknown lesion %r" % (name,))
    fidelius.audit_event("lesion-applied", lesion=name)
    return system


def _replant_xen_copies(system):
    """Undo the monopoly rewrite: put the encodings back into Xen text
    (without checking loops — their hook sites stay at the Fidelius
    copies, which is the whole point of the lesion)."""
    from repro.xen.image import default_xen_image
    text = system.hypervisor.text
    pristine = default_xen_image(text.base_va, pages=text.pages)
    system.machine.memory.write(text.base_va, pristine.to_bytes())
    for op in PrivOp:
        if pristine.has(op):
            text._placements[op] = pristine.va_of(op) - text.base_va


def _remap_guest_ram(system):
    """Undo Section 4.3.4's unmapping — for guests already enrolled and
    for any enrolled later (the lesioned build simply never unmaps)."""
    from repro.common.constants import PTE_NX, PTE_PRESENT, PTE_WRITABLE
    from repro.common.types import Owner, PageUsage
    from repro.hw.pagetable import entry_pfn, make_entry
    fidelius = system.fidelius
    machine = system.machine

    for domain in fidelius.protected_domains:
        for _, leaf in domain.npt.leaf_mappings():
            pfn = entry_pfn(leaf)
            machine.walker.write_entry(
                machine.host_root, pfn << 12,
                make_entry(pfn, PTE_PRESENT | PTE_WRITABLE | PTE_NX))
    machine.tlb.flush_all("lesion")

    def protect_without_unmapping(domain):
        fidelius.protected_domains.add(domain)
        fidelius.audit_event("domain-protected", domid=domain.domid)

    fidelius.protect_domain = protect_without_unmapping

    def classify_only(domain, pfn):
        fidelius.pit.classify(pfn, Owner.GUEST, PageUsage.GUEST_RAM,
                              tag=domain.domid)

    hooks = system.hypervisor._hooks["guest_frame_alloc"]
    for index, hook in enumerate(hooks):
        if getattr(hook, "__self__", None) is fidelius:
            hooks[index] = classify_only
