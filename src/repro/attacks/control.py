"""Protection-disabling attacks through privileged instructions and
control-flow hijacking (Sections 4.1.2, 6.2 'Disabling protection')."""

from repro.common.constants import CR0_PG, CR0_WP, EFER_SVME, MSR_EFER, PAGE_SIZE
from repro.common.types import ExitReason, PrivOp
from repro.attacks.base import attack, make_victim
from repro.hw.vmcb import Vmcb
from repro.xen import hypercalls as hc


def _instruction_site(system, op):
    """Where an attacker would execute ``op``: an unguarded copy in
    Xen's own text if one exists (the baseline, or a build that skipped
    the rewrite), else the monopoly copy with its checking loop."""
    if system.hypervisor.text.has(op):
        return system.hypervisor.text.va_of(op)
    return system.fidelius.text_image.va_of(op)


def _mov_cr0_site(system):
    return _instruction_site(system, PrivOp.MOV_CR0)


@attack("clear-wp-and-rewrite-npt", "§6.2 'Disabling protection'",
        baseline_succeeds=True)
def clear_wp_and_rewrite_npt(system):
    """Execute MOV CR0 to clear WP (by ROP or directly), then rewrite a
    victim NPT entry to leak memory into a hypervisor-readable frame."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    cpu = system.machine.cpu
    cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=_mov_cr0_site(system))
    # WP now clear: write-protection is dead, rewrite the NPT directly
    hypervisor = system.hypervisor
    spare = system.machine.allocator.alloc()
    entry_pa = domain.npt.entry_pa(secret_gfn * PAGE_SIZE)
    from repro.hw.pagetable import make_entry
    from repro.common.constants import PTE_PRESENT, PTE_USER, PTE_WRITABLE
    cpu.store_u64(entry_pa, make_entry(spare, PTE_PRESENT | PTE_USER | PTE_WRITABLE))
    remapped = hypervisor.guest_frame_hpfn(domain, secret_gfn)
    return remapped == spare, "NPT leaf redirected to attacker frame"


@attack("rop-to-monopolized-instruction", "§4.1.2 checking loops",
        baseline_succeeds=True)
def rop_to_monopolized_instruction(system):
    """Jump straight at the privileged instruction (control-flow
    hijack): the encoding executes, but the checking loop physically
    after it runs too."""
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    cpu = system.machine.cpu
    cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=_mov_cr0_site(system))
    return not cpu.wp_enabled, "WP cleared via hijacked control flow"


@attack("wrmsr-disable-nx", "Table 2: WRMSR may disable NX",
        baseline_succeeds=True)
def wrmsr_disable_nx(system):
    """Clear EFER.NXE so injected data pages become executable."""
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    cpu = system.machine.cpu
    site = _instruction_site(system, PrivOp.WRMSR)
    cpu.exec_privileged(PrivOp.WRMSR, (MSR_EFER, EFER_SVME), rip=site)
    return not cpu.nxe_enabled, "EFER.NXE cleared"


@attack("forged-vmcb-vmrun", "§4.1.2 VMRUN unmapped / type 3 gate",
        baseline_succeeds=True)
def forged_vmcb_vmrun(system):
    """VMRUN a forged VMCB that reuses the victim's ASID with an
    attacker-controlled NPT: the conspirator world decrypts with the
    victim's key."""
    domain, ctx, secret_gfn = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    machine = system.machine
    rogue_npt = machine.allocator.alloc()
    machine.memory.zero_frame(rogue_npt)
    forged = Vmcb(asid=domain.asid, nested_cr3=rogue_npt)
    if system.protected:
        site = system.fidelius.text_image.va_of(PrivOp.VMRUN)
    else:
        site = system.hypervisor.text.va_of(PrivOp.VMRUN)
    machine.cpu.vmrun(forged, rip=site)
    entered = machine.cpu.current_asid == domain.asid
    machine.cpu.vmexit(forged, ExitReason.HLT)
    return entered, "forged world entered with the victim's ASID"


@attack("exec-injected-code", "§6.3 DEP / PIT code-integrity",
        baseline_succeeds=False)
def exec_injected_code(system):
    """Write a privileged-instruction encoding into a data page and
    execute it there.  NX on data pages (DEP) stops it on both
    configurations — and under Fidelius the scanner would flag it too."""
    from repro.common.types import PRIV_OPCODES
    domain, ctx, _ = make_victim(system)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    machine = system.machine
    pfn = machine.allocator.alloc()
    va = pfn * PAGE_SIZE
    machine.memory.write(va, PRIV_OPCODES[PrivOp.MOV_CR0])
    machine.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG | CR0_WP, rip=va)
    return True, "injected code executed from a data page"
