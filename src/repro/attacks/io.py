"""I/O-path attacks (Sections 2.2, 4.3.5, 6.2): the driver domain sits
on the disk path and sees every byte in the shared buffers and on the
virtual disk."""

from repro.attacks.base import attack, make_victim

_FILE = b"SECRET FILE: q3 acquisition target"


def _blockdev(system, domain, ctx):
    if system.protected:
        encoder = system.sev_encoder_for(domain, ctx, pages=2)
    else:
        encoder = None  # plain SEV has no I/O protection at all
    return system.attach_disk(domain, ctx, encoder=encoder, buffer_pages=2)


@attack("driver-domain-io-snoop", "§2.2 I/O data exposure",
        baseline_succeeds=True)
def driver_domain_io_snoop(system):
    """The back end records what crosses the shared buffer."""
    domain, ctx, _ = make_victim(system)
    disk, frontend, backend = _blockdev(system, domain, ctx)
    frontend.write(10, _FILE)
    frontend.read(10, 1)
    observed = backend.everything_observed()
    return _FILE[:12] in observed, "driver domain captured I/O bytes"


@attack("disk-at-rest-theft", "§6.1 disk data protection",
        baseline_succeeds=True)
def disk_at_rest_theft(system):
    """Steal the disk image after the guest wrote to it."""
    domain, ctx, _ = make_victim(system)
    disk, frontend, _ = _blockdev(system, domain, ctx)
    frontend.write(10, _FILE)
    return _FILE[:12] in disk.raw_sector(10), "plaintext found on disk"


@attack("dma-buffer-snoop", "§2.2 DMA on unencrypted shared pages",
        baseline_succeeds=True)
def dma_buffer_snoop(system):
    """A malicious device DMA-reads the shared I/O buffer right after a
    transfer: the pages are necessarily unencrypted, so whatever the
    encoder put there is what the device gets."""
    from repro.common.constants import PAGE_SIZE
    domain, ctx, _ = make_victim(system)
    disk, frontend, _ = _blockdev(system, domain, ctx)
    frontend.write(10, _FILE)
    buffer_gfn = frontend.buffer_gfns[0]
    hpa = system.hypervisor.guest_frame_hpfn(domain, buffer_gfn) * PAGE_SIZE
    snooped = system.machine.dma.read(hpa, 512)
    return _FILE[:12] in snooped, "DMA read the in-flight buffer"
