"""Guest runtime-state attacks: the pre-SEV-ES surface (Section 2.2).

The VMCB and the general-purpose registers are exposed across every
exit on plain SEV; the hypervisor can steal confidential values and
tamper with control state — "this can lead to arbitrary guest memory
reads and writes or even disable SEV protection completely".
"""

from repro.attacks.base import attack, make_victim
from repro.xen import hypercalls as hc

_SENTINEL = 0x5EC12E7C0DE


@attack("register-steal", "§2.2 exposed GPRs on exit",
        baseline_succeeds=True)
def register_steal(system):
    """Harvest a secret the guest holds in a callee-saved register when
    a hypercall traps out."""
    domain, ctx, _ = make_victim(system)
    ctx._ensure_guest()
    system.machine.cpu.regs["r14"] = _SENTINEL
    stolen = {}

    def spy(vcpu, *args):
        stolen["r14"] = vcpu.saved_gprs["r14"]
        return hc.E_OK

    system.hypervisor.register_hypercall(90, spy)
    ctx.hypercall(90)
    return stolen["r14"] == _SENTINEL, "hypervisor saw r14=%#x" % stolen["r14"]


@attack("register-tamper", "§2.2 exposed GPRs on exit",
        baseline_succeeds=True)
def register_tamper(system):
    """Overwrite a guest register across an exit: on the baseline the
    poisoned value flows back into the guest."""
    domain, ctx, _ = make_victim(system)
    ctx._ensure_guest()
    system.machine.cpu.regs["r13"] = 1000

    def poison(vcpu, *args):
        vcpu.saved_gprs["r13"] = 0xBAD
        return hc.E_OK

    system.hypervisor.register_hypercall(91, poison)
    ctx.hypercall(91)
    value = system.machine.cpu.regs["r13"]
    return value == 0xBAD, "guest r13 after exit: %#x" % value


@attack("vmcb-read-guest-state", "§2.2 unencrypted VMCB",
        baseline_succeeds=True)
def vmcb_read_guest_state(system):
    """Read confidential control state (guest CR3) out of the VMCB
    while servicing an exit."""
    domain, ctx, _ = make_victim(system)
    ctx._ensure_guest()
    domain.vcpu0.vmcb.write("cr3", 0x1337000)  # guest-owned state
    seen = {}

    def peek(vcpu, *args):
        seen["cr3"] = vcpu.vmcb.read("cr3")
        return hc.E_OK

    system.hypervisor.register_hypercall(92, peek)
    ctx.hypercall(92)
    return seen["cr3"] == 0x1337000, "hypervisor saw cr3=%#x" % seen["cr3"]


@attack("vmcb-disable-protection", "§2.2 VMCB integrity / [2]",
        baseline_succeeds=True)
def vmcb_disable_protection(system):
    """Tamper with the VMCB's control fields during an exit: redirect
    the nested CR3 (arbitrary memory remap) — the 'disable SEV
    protection completely' primitive."""
    domain, ctx, _ = make_victim(system)
    ctx._ensure_guest()
    rogue_npt_root = system.machine.allocator.alloc()
    system.machine.memory.zero_frame(rogue_npt_root)

    def sabotage(vcpu, *args):
        vcpu.vmcb.write("nested_cr3", rogue_npt_root)
        return hc.E_OK

    system.hypervisor.register_hypercall(93, sabotage)
    ctx.hypercall(93)
    effective = domain.vcpu0.vmcb.read("nested_cr3")
    return effective == rogue_npt_root, \
        "guest re-entered with nested_cr3=%#x" % effective


@attack("vmcb-rip-hijack", "§5.1 exit-reason policies (RIP advance)",
        baseline_succeeds=True)
def vmcb_rip_hijack(system):
    """Redirect the guest's instruction pointer through the VMCB while
    servicing a hypercall: on plain SEV the guest resumes wherever the
    hypervisor pointed it; Fidelius only accepts instruction-length
    advances of RIP."""
    domain, ctx, _ = make_victim(system)
    ctx._ensure_guest()

    def hijack(vcpu, *args):
        vcpu.vmcb.write("rip", 0x41414141)  # attacker-chosen gadget
        return hc.E_OK

    system.hypervisor.register_hypercall(95, hijack)
    ctx.hypercall(95)
    landed = domain.vcpu0.vmcb.read("rip")
    return landed == 0x41414141, "guest resumed at %#x" % landed


@attack("iago-return-value", "§6.2 Iago attacks [12]",
        baseline_succeeds=True)
def iago_return_value(system):
    """The hypervisor answers a guest request with a malicious value (a
    frame number pointing into attacker-readable memory).  Fidelius's
    return-value policy vets it before VMRUN."""
    domain, ctx, _ = make_victim(system)
    nr = 94

    def lying_allocator(vcpu, *args):
        # "here is your new frame": far outside the guest's memory
        return 0xDEAD_BEEF

    system.hypervisor.register_hypercall(nr, lying_allocator)
    if system.protected:
        from repro.common.errors import PolicyViolation

        def validate_gfn(value, vcpu):
            if value >= vcpu.domain.guest_frames:
                raise PolicyViolation(
                    "iago", "hypercall %d returned absurd gfn %#x"
                    % (nr, value))

        system.fidelius.register_return_validator(nr, validate_gfn)
    returned = ctx.hypercall(nr)
    return returned == 0xDEAD_BEEF, "guest accepted gfn %#x" % returned
