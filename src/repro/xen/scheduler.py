"""A round-robin vCPU scheduler with timer preemption.

The paper's hypervisor "is still responsible for serving guest VM like
interrupt handling, scheduling, etc." (Section 3.1).  This module
supplies that service: guest programs written as generators are
time-sliced on the single physical CPU; when a quantum expires, the
scheduler forces a timer exit (``ExitReason.INTR``), injects the timer
vector, and hands the CPU to the next runnable task.

Every preemption crosses the full exit/entry boundary, so under
Fidelius each context switch exercises the shadow machinery — which is
exactly what the isolation test wants: guest A's registers must survive
guest B's (and the hypervisor's) turn on the CPU untouched and unseen.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import XenError
from repro.common.types import CpuMode, ExitReason

TIMER_VECTOR = 0x20


@dataclass
class GuestTask:
    """One schedulable guest program.

    ``program`` is a generator function taking the task's context and
    yielding once per step; the scheduler resumes it quantum-by-quantum.
    """

    name: str
    ctx: object
    program: object
    steps: int = 0
    preemptions: int = 0
    done: bool = False
    _gen: object = field(default=None, repr=False)

    def start(self):
        self._gen = self.program(self.ctx)
        return self

    def step(self):
        if self._gen is None:
            raise XenError("task %s not started" % self.name)
        try:
            next(self._gen)
            self.steps += 1
            return True
        except StopIteration:
            self.done = True
            return False


class RoundRobinScheduler:
    """Time-slices tasks on the physical CPU, quantum steps at a time."""

    def __init__(self, hypervisor, quantum=4):
        if quantum < 1:
            raise XenError("quantum must be at least one step")
        self._hv = hypervisor
        self.quantum = quantum
        self.rounds = 0

    def _preempt(self, task):
        """Timer fires: force the running vCPU out and queue the tick."""
        cpu = self._hv.machine.cpu
        vcpu = task.ctx.vcpu
        if cpu.mode is CpuMode.GUEST and self._hv.current_vcpu is vcpu:
            self._hv.inject_interrupt(vcpu, TIMER_VECTOR)
            self._hv.guest_exit(vcpu, ExitReason.INTR, stay_in_host=True)
            task.preemptions += 1

    def run(self, tasks, max_rounds=10_000):
        """Run every task to completion; returns them for inspection."""
        queue = deque(task.start() for task in tasks)
        while queue:
            self.rounds += 1
            if self.rounds > max_rounds:
                raise XenError("scheduler exceeded max_rounds")
            task = queue.popleft()
            ran_full_quantum = True
            for _ in range(self.quantum):
                if not task.step():
                    ran_full_quantum = False
                    break
            if task.done:
                self._park(task)
                continue
            if ran_full_quantum:
                self._preempt(task)
            queue.append(task)
        return tasks

    def _park(self, task):
        """A finished task leaves the CPU so the next one can enter."""
        cpu = self._hv.machine.cpu
        vcpu = task.ctx.vcpu
        if cpu.mode is CpuMode.GUEST and self._hv.current_vcpu is vcpu:
            self._hv.guest_exit(vcpu, ExitReason.INTR, stay_in_host=True)
