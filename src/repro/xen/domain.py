"""Domains, virtual CPUs and the guest execution context.

Guest "programs" are Python code driving a :class:`GuestContext`: every
memory access goes through the NPT and the memory controller with the
guest's ASID and C-bit choices, every trap runs the full
VMEXIT -> hypervisor -> VMRUN path (with whatever boundary hooks —
i.e. Fidelius — are installed).  The context enters guest mode lazily
on first use, so test and example code reads naturally.
"""

from dataclasses import dataclass

from repro.common.constants import HOST_ASID, PAGE_SIZE
from repro.common.errors import NestedPageFault, XenError
from repro.common.types import CpuMode, ExitReason
from repro.hw.vmcb import Vmcb


@dataclass
class GuestLedger:
    """Per-guest performance accounting that outlives one incarnation.

    The hypervisor maintains it on every world switch (VMRUN count,
    VMEXIT count, cycles spent with the CPU in guest mode).
    ``tlb_epoch`` counts the incarnations whose TLB started cold: it
    begins at 0 for a freshly launched guest and is bumped — never
    reset — each time the guest is rebuilt on a (possibly different)
    host by migration or snapshot restore.  The whole ledger travels
    inside the :class:`~repro.core.migration.MigrationPackage`, so a
    restored guest's :meth:`Domain.perf_stats` keeps telling the truth
    about its lifetime instead of restarting from zero.
    """

    vmruns: int = 0
    vmexits: int = 0
    cycles_in_guest: int = 0
    tlb_epoch: int = 0

    def as_dict(self):
        return {"vmruns": self.vmruns, "vmexits": self.vmexits,
                "cycles_in_guest": self.cycles_in_guest,
                "tlb_epoch": self.tlb_epoch}

    def export(self):
        """Canonical wire form for a migration/snapshot package."""
        return tuple(sorted(self.as_dict().items()))

    @classmethod
    def from_export(cls, exported):
        return cls(**dict(exported))


class VirtualCpu:
    """One virtual CPU: its VMCB plus Xen's software register save area.

    ``saved_gprs`` models the in-hypervisor-memory copy of the guest's
    general-purpose registers that Xen keeps across an exit — readable
    and writable by any hypervisor code, which is the register attack
    surface Fidelius's shadowing closes.
    """

    def __init__(self, domain, index):
        self.domain = domain
        self.index = index
        self.vmcb = Vmcb(asid=domain.asid, nested_cr3=domain.npt.root_pfn)
        self.saved_gprs = None
        self.halted = False
        self.in_guest = False
        #: cycle-counter reading at the last guest entry, for the
        #: domain ledger's in-guest cycle attribution
        self.entry_cycles = 0
        #: Interrupt vectors delivered into the guest (via the VMCB's
        #: event_injection field, consumed on entry).
        self.delivered_interrupts = []


class Domain:
    """One virtual machine (guests and the management domain alike)."""

    def __init__(self, domid, name, hypervisor, guest_frames, asid=0,
                 privileged=False):
        self.domid = domid
        self.name = name
        self.hypervisor = hypervisor
        self.guest_frames = guest_frames
        self.asid = asid
        self.privileged = privileged
        self.sev_handle = None
        self.npt = None  # installed by the hypervisor at construction
        self.grant_table = None
        #: Guest-page-table C-bits: the set of guest frame numbers the
        #: guest has chosen to encrypt with its K_vek (takes priority
        #: over the NPT-level SME C-bit, as in Figure 1 of the paper).
        self.encrypted_gfns = set()
        #: Host frames this domain *owns* (its RAM).  Frames mapped via
        #: grants belong to the granter and never appear here — which is
        #: what keeps teardown from scrubbing a peer's memory.
        self.owned_hpfns = set()
        self.vcpus = []
        self.dying = False
        #: Lifetime performance accounting; round-tripped by migration
        #: and snapshot/restore (see :class:`GuestLedger`).
        self.ledger = GuestLedger()

    @property
    def sev_enabled(self):
        return self.asid != HOST_ASID

    def perf_stats(self):
        """This guest's lifetime accounting, across incarnations."""
        return self.ledger.as_dict()

    def add_vcpu(self):
        vcpu = VirtualCpu(self, len(self.vcpus))
        self.vcpus.append(vcpu)
        return vcpu

    @property
    def vcpu0(self):
        return self.vcpus[0]

    def gfn_encrypted(self, gfn):
        return gfn in self.encrypted_gfns

    def context(self, vcpu_index=0):
        """A guest execution context bound to one virtual CPU.

        A guest "configured with 2 virtual cores" (the paper's setup)
        gets one context per vCPU; on the single physical CPU they
        time-share, each re-entering through the full exit/entry
        boundary — so per-vCPU shadow state is genuinely exercised.
        """
        return GuestContext(self, self.vcpus[vcpu_index])


class GuestContext:
    """The guest-side API: memory, hypercalls, CPUID, C-bit control."""

    def __init__(self, domain, vcpu=None):
        self._domain = domain
        self._vcpu = vcpu or domain.vcpu0
        self._hv = domain.hypervisor
        self._machine = domain.hypervisor.machine

    @property
    def vcpu(self):
        return self._vcpu

    # -- mode management ---------------------------------------------------------

    def _ensure_guest(self):
        cpu = self._machine.cpu
        vcpu = self._vcpu
        if cpu.mode is CpuMode.GUEST:
            running = self._hv.current_vcpu
            if running is not vcpu:
                raise XenError("another vCPU is on the CPU")
            return running
        self._hv.enter_guest(vcpu)
        return vcpu

    def _trap(self, reason, info1=0, info2=0):
        """Take a VM exit, let the host stack run, come back to guest."""
        vcpu = self._ensure_guest()
        self._hv.guest_exit(vcpu, reason, info1, info2)
        return self._machine.cpu.regs["rax"]

    # -- memory ------------------------------------------------------------------

    def _effective_encryption(self, gfn, npt_c_bit):
        """Guest page-table C-bit takes priority over the NPT (SME) C-bit."""
        if self._domain.gfn_encrypted(gfn):
            return True, self._domain.asid
        if npt_c_bit:
            return True, HOST_ASID
        return False, HOST_ASID

    def _translate(self, gpa, write):
        """Second-level translation with NPF exits handled inline."""
        for _ in range(3):
            try:
                return self._domain.npt.translate(gpa, write=write)
            except NestedPageFault:
                self._trap(ExitReason.NPF, info1=int(write), info2=gpa)
        raise XenError("NPT violation at gpa=%#x not resolved by host" % gpa)

    def read(self, gpa, length):
        self._ensure_guest()
        out = bytearray()
        while length:
            take = min(length, PAGE_SIZE - (gpa & (PAGE_SIZE - 1)))
            translation = self._translate(gpa, write=False)
            c_bit, asid = self._effective_encryption(gpa >> 12, translation.c_bit)
            out.extend(self._machine.memctrl.read(
                translation.pa, take, c_bit=c_bit, asid=asid))
            gpa += take
            length -= take
        return bytes(out)

    def write(self, gpa, data):
        self._ensure_guest()
        view = memoryview(data)
        while view.nbytes:
            take = min(view.nbytes, PAGE_SIZE - (gpa & (PAGE_SIZE - 1)))
            translation = self._translate(gpa, write=True)
            c_bit, asid = self._effective_encryption(gpa >> 12, translation.c_bit)
            self._machine.memctrl.write(
                translation.pa, bytes(view[:take]), c_bit=c_bit, asid=asid)
            gpa += take
            view = view[take:]

    def _pieces(self, gpa, length, write):
        """Translate a GPA range into memory-controller pieces.

        Walks the range page by page (translation granularity), resolves
        the effective encryption of each page, and coalesces physically
        contiguous pieces that share one ``(c_bit, asid)`` so a span of
        contiguously mapped guest pages reaches the memory controller as
        a single wide access.
        """
        pieces = []
        while length:
            take = min(length, PAGE_SIZE - (gpa & (PAGE_SIZE - 1)))
            translation = self._translate(gpa, write=write)
            c_bit, asid = self._effective_encryption(
                gpa >> 12, translation.c_bit)
            pa = translation.pa
            if pieces:
                last_pa, last_len, last_c, last_asid = pieces[-1]
                if (last_pa + last_len == pa and last_c == c_bit
                        and last_asid == asid):
                    pieces[-1] = (last_pa, last_len + take, c_bit, asid)
                    gpa += take
                    length -= take
                    continue
            pieces.append((pa, take, c_bit, asid))
            gpa += take
            length -= take
        return pieces

    def batch(self, ops):
        """Execute a span of guest memory operations in one call.

        ``ops`` is a sequence of guest-level batched operations::

            ("r", gpa, length)   -> bytes read
            ("w", gpa, data)     -> None
            ("h", gpa, length)   -> sha256 digest of the range

        Returns a list of results aligned with ``ops``.  Each operation
        is translated page by page and handed to
        :meth:`repro.hw.memctrl.MemoryController.run_batch` as one
        batched call, so a guest program that phrases a round as a few
        ``batch`` calls pays two Python calls per span instead of two
        per page.

        Equivalence with the per-access path (:meth:`read`/
        :meth:`write` in the same operation order) is exact — same
        bytes, same cycle ledger — because the memory controller walks
        the same cache lines in the same order either way and the cycle
        ledger is order-free.  The one sequencing difference: each
        operation's translations are resolved *before* its data access
        (rather than interleaved page by page), so a nested page fault
        taken mid-operation sees the state as of the start of that
        operation's data phase.  Batches whose NPF handling depends on
        partially completed data writes should use the per-access API.
        """
        self._ensure_guest()
        pieces_of = self._pieces
        mc_ops = []
        for op in ops:
            kind = op[0]
            if kind == "r" or kind == "h":
                mc_ops.append((kind, pieces_of(op[1], op[2], False)))
            elif kind == "w":
                data = op[2]
                mc_ops.append((kind, pieces_of(op[1], len(data), True),
                               data))
            else:
                raise XenError("unknown guest batch op kind %r" % (kind,))
        return self._machine.memctrl.run_batch(mc_ops)

    def set_page_encrypted(self, gfn, encrypted=True):
        """Set/clear the C-bit in the guest's page tables for ``gfn``."""
        if encrypted:
            self._domain.encrypted_gfns.add(gfn)
        else:
            self._domain.encrypted_gfns.discard(gfn)

    # -- traps ---------------------------------------------------------------------

    def hypercall(self, nr, arg1=0, arg2=0, arg3=0, arg4=0, arg5=0):
        """Issue a hypercall; returns the value the host left in RAX."""
        self._ensure_guest()
        regs = self._machine.cpu.regs
        regs["rax"] = nr
        regs["rdi"] = arg1
        regs["rsi"] = arg2
        regs["rdx"] = arg3
        regs["r10"] = arg4
        regs["r8"] = arg5
        return self._trap(ExitReason.HYPERCALL)

    def cpuid(self, leaf):
        self._ensure_guest()
        regs = self._machine.cpu.regs
        regs["rax"] = leaf
        regs["rcx"] = 0
        self._trap(ExitReason.CPUID)
        return (regs["rax"], regs["rbx"], regs["rcx"], regs["rdx"])

    def rdmsr(self, msr):
        self._ensure_guest()
        regs = self._machine.cpu.regs
        regs["rcx"] = msr
        self._trap(ExitReason.MSR, info1=0)
        return regs["rax"] | (regs["rdx"] << 32)

    def take_interrupts(self):
        """Vectors delivered to this vCPU since the last call."""
        vcpu = self._vcpu
        delivered, vcpu.delivered_interrupts = \
            vcpu.delivered_interrupts, []
        return delivered

    def halt(self):
        self._ensure_guest()
        self._vcpu.halted = True
        vcpu = self._vcpu
        self._hv.guest_exit(vcpu, ExitReason.HLT, stay_in_host=True)

    # -- convenience -----------------------------------------------------------------

    def memset(self, gpa, value, length):
        self.write(gpa, bytes([value]) * length)

    def copy(self, dst_gpa, src_gpa, length):
        """An in-guest memcpy (used by the micro benchmark of §7.2)."""
        self.write(dst_gpa, self.read(src_gpa, length))
