"""XenStore: the hierarchical key-value store domains use to exchange
configuration — grant references, ring ports, device details.

Run by the management domain, i.e. *untrusted* in the paper's threat
model; nothing secret may transit it.  The PV drivers only pass grant
references and event-channel ports through it, and under Fidelius the
sharing context named by those references is independently verified
against the GIT, so a tampered XenStore entry cannot widen access.
"""

from repro.common.errors import XenError


class XenStore:
    def __init__(self):
        self._store = {}
        self.reads = 0
        self.writes = 0

    @staticmethod
    def _normalize(path):
        if not path or not path.startswith("/"):
            raise XenError("XenStore paths are absolute: %r" % (path,))
        return path.rstrip("/") or "/"

    def write(self, path, value):
        self._store[self._normalize(path)] = value
        self.writes += 1

    def read(self, path, default=None):
        self.reads += 1
        return self._store.get(self._normalize(path), default)

    def require(self, path):
        value = self.read(path)
        if value is None:
            raise XenError("XenStore key %r missing" % (path,))
        return value

    def delete(self, path):
        self._store.pop(self._normalize(path), None)

    def list(self, prefix):
        prefix = self._normalize(prefix)
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(k for k in self._store if k.startswith(prefix))
