"""Event channels: Xen's asynchronous notification primitive.

The PV I/O path uses an event channel to kick the backend after pushing
requests to the shared ring (paper Section 2.3).  Fidelius additionally
*retrofits* the event-channel path of the SEV-based I/O mode: the kick
is intercepted so the firmware SEND/RECEIVE_UPDATE re-encryption runs
before the backend sees the buffer (Section 4.3.5), modelled with the
``interceptor`` hook.
"""

from repro.common.errors import XenError


class EventChannel:
    """A bound, unidirectional-notify channel between two domains."""

    def __init__(self, port, from_domid, to_domid):
        self.port = port
        self.from_domid = from_domid
        self.to_domid = to_domid
        self.pending = 0
        self._handler = None

    def set_handler(self, handler):
        self._handler = handler

    def notify(self):
        self.pending += 1
        if self._handler is not None:
            self._handler(self)
            self.pending = 0


class EventChannelBus:
    """Allocation and lookup of event channels."""

    def __init__(self):
        self._channels = {}
        self._next_port = 1
        #: Optional hook called as interceptor(channel) before delivery;
        #: installed by Fidelius's retrofitted event-channel mechanism.
        self.interceptor = None

    def alloc(self, from_domid, to_domid):
        port = self._next_port
        self._next_port += 1
        channel = EventChannel(port, from_domid, to_domid)
        self._channels[port] = channel
        return channel

    def channel(self, port):
        channel = self._channels.get(port)
        if channel is None:
            raise XenError("no event channel on port %r" % (port,))
        return channel

    def bind(self, port, handler):
        self.channel(port).set_handler(handler)

    def send(self, port):
        channel = self.channel(port)
        if self.interceptor is not None:
            self.interceptor(channel)
        channel.notify()

    def close(self, port):
        self._channels.pop(port, None)
