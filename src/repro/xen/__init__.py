"""The Xen-like virtualization substrate (paper Section 2.3).

Provides the hypervisor the paper hardens: domains with nested paging,
VM-exit dispatch, grant tables, event channels, XenStore and the
para-virtualized block I/O path.  Everything security-relevant the
hypervisor does goes through replaceable indirections that Fidelius
(``repro.core``) swaps for gated, policy-checked versions.
"""

from repro.xen import hypercalls
from repro.xen.domain import Domain, GuestContext, VirtualCpu
from repro.xen.event_channel import EventChannelBus
from repro.xen.grant_table import GrantEntry, GrantTable
from repro.xen.hypervisor import Hypervisor
from repro.xen.image import CodeImage, default_fidelius_image, default_xen_image
from repro.xen.npt import NestedPageTable
from repro.xen.xenstore import XenStore

__all__ = [
    "hypercalls",
    "Domain",
    "GuestContext",
    "VirtualCpu",
    "EventChannelBus",
    "GrantEntry",
    "GrantTable",
    "Hypervisor",
    "CodeImage",
    "default_fidelius_image",
    "default_xen_image",
    "NestedPageTable",
    "XenStore",
]
