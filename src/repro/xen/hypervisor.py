"""The Xen-like hypervisor.

This is the *service provider* of the paper's model: it owns VM-exit
handling, NPT management, grant tables, event channels and scheduling.
It is also the *untrusted* principal: all of its resource-touching
operations go through replaceable indirections —

* ``priv_executor``  — executes restricted privileged instructions;
* ``vmrun_executor`` — performs the VMRUN world switch;
* ``word_writer``    — writes hypervisor-managed memory words (its own
  page tables, guest NPTs, grant tables);
* ``regs_saver`` / ``regs_restorer`` — the guest register save/restore
  across an exit.

At boot these point to plain direct implementations (the baseline, the
paper's "Xen" configuration).  Installing Fidelius swaps them for gated
and shadowed versions — exactly the paper's "separating resource
accessing from policy enforcement" (Section 3.1) with no new layer of
abstraction.  Malicious-hypervisor attacks bypass the indirections on
purpose and hit the hardware directly; the question the security
evaluation asks is what happens then.
"""

from repro.common.constants import (
    EFER_SVME,
    HYPERCALL_SERVICE_CYCLES,
    MSR_EFER,
    NPT_FILL_CYCLES,
    PAGE_SIZE,
    PTE_NX,
    PTE_WRITABLE,
    VMEXIT_ROUNDTRIP_CYCLES,
)
from repro.common.errors import XenError
from repro.common.types import ExitReason, PrivOp, frame_addr, pfn_of
from repro.hw.pagetable import PageTableWalker
from repro.xen import hypercalls as hc
from repro.xen.event_channel import EventChannelBus
from repro.xen.grant_table import EMPTY_ENTRY, GrantEntry, GrantTable
from repro.xen.image import default_xen_image
from repro.xen.npt import NestedPageTable
from repro.xen.domain import Domain
from repro.xen.xenstore import XenStore

#: Events other components can subscribe to via ``Hypervisor.add_hook``.
HOOK_EVENTS = (
    "domain_created",
    "guest_frame_alloc",
    "guest_frame_release",
    "table_frame_release",
    "npt_table_alloc",
    "iommu_table_alloc",
    "grant_table_created",
    "domain_destroyed",
)


class _NptTableAllocator:
    """``allocate_frame`` hook bound to one domain's NPT.

    A plain class (not a closure) so a live domain graph stays
    picklable — ``repro.checkpoint`` serializes whole systems, and the
    NPT holds this allocator for the lifetime of the domain.
    """

    def __init__(self, hypervisor, domain):
        self._hypervisor = hypervisor
        self._domain = domain

    def __call__(self):
        return self._hypervisor._alloc_npt_table_page(self._domain)


class Hypervisor:
    """The Xen core, booted on a :class:`~repro.hw.machine.Machine`."""

    DOM0_FRAMES = 32

    def __init__(self, machine, firmware=None):
        self.machine = machine
        self.cpu = machine.cpu
        self.firmware = firmware
        self.domains = {}
        self._next_domid = 0
        self._next_asid = 1
        self.xenstore = XenStore()
        self.events = EventChannelBus()
        self.text = None
        self.dom0 = None
        #: Optional IOMMU (the beyond-the-paper DMA protection extension).
        self.iommu = None
        #: Lazy NPT population (ablation knob; Xen's default is batched
        #: prepopulation at boot, per Section 4.3.4).
        self.lazy_npt = False
        # -- replaceable indirections (Fidelius swaps these) ------------
        self.priv_executor = self._exec_priv_direct
        self.vmrun_executor = self._exec_vmrun_direct
        self.word_writer = self._write_direct
        self.regs_saver = self._save_regs_direct
        self.regs_restorer = self._restore_regs_direct
        self._hooks = {event: [] for event in HOOK_EVENTS}
        #: The vCPU currently running in guest mode, if any.
        self.current_vcpu = None
        self._hypercall_table = {
            hc.HC_VOID: self._hc_void,
            hc.HC_GRANT_CREATE: self._hc_grant_create,
            hc.HC_GRANT_MAP: self._hc_grant_map,
            hc.HC_GRANT_UNMAP: self._hc_grant_unmap,
            hc.HC_EVTCHN_SEND: self._hc_evtchn_send,
            hc.HC_SCHED_YIELD: self._hc_sched_yield,
            hc.HC_SHUTDOWN: self._hc_shutdown,
            hc.HC_BALLOON_OUT: self._hc_balloon_out,
        }
        self._stay_in_host = False

    # -- boot -------------------------------------------------------------------------

    def boot(self):
        """Lay out the text image, enable SVM, create the management VM."""
        if self.text is not None:
            raise XenError("hypervisor already booted")
        text_frames = self.machine.allocator.alloc_many(4)
        base_va = frame_addr(text_frames[0])
        if any(text_frames[i + 1] != text_frames[i] + 1
               for i in range(len(text_frames) - 1)):
            raise XenError("text frames must be contiguous in this layout")
        self.text = default_xen_image(base_va, pages=len(text_frames))
        self.machine.memory.write(base_va, self.text.to_bytes())
        for va in self.text.page_vas():
            # Text is executable and read-only, like real Xen's.
            self.machine.walker.set_flags(
                self.machine.host_root, va,
                set_mask=0, clear_mask=PTE_NX | PTE_WRITABLE,
            )
        self.machine.tlb.flush_all("xen-boot")
        self.priv(PrivOp.WRMSR, (MSR_EFER, self.cpu.efer | EFER_SVME))
        self.priv(PrivOp.LGDT, base_va)
        self.priv(PrivOp.LIDT, base_va + 0x40)
        self.dom0 = self.create_domain("dom0", guest_frames=self.DOM0_FRAMES,
                                       sev=False, privileged=True)
        return self

    # -- hooks ---------------------------------------------------------------------------

    def add_hook(self, event, handler):
        if event not in self._hooks:
            raise XenError("unknown hook event %r" % (event,))
        self._hooks[event].append(handler)

    def _fire(self, event, *args):
        for handler in self._hooks[event]:
            handler(*args)

    # -- replaceable primitives ------------------------------------------------------------

    def priv(self, op, arg):
        """Execute a restricted privileged instruction."""
        return self.priv_executor(op, arg)

    def _exec_priv_direct(self, op, arg):
        self.cpu.exec_privileged(op, arg, rip=self.text.va_of(op))

    def _exec_vmrun_direct(self, vcpu):
        self.cpu.vmrun(vcpu.vmcb, rip=self.text.va_of(PrivOp.VMRUN))

    def write_word(self, va, data):
        """Software write to hypervisor-managed memory (identity VA==PA)."""
        self.word_writer(va, data)

    def _write_direct(self, va, data):
        self.cpu.store(va, data)

    def _save_regs_direct(self, vcpu):
        """Baseline Xen: stash all guest GPRs in hypervisor memory —
        readable and writable by any host code."""
        vcpu.saved_gprs = self.cpu.regs.copy()

    def _restore_regs_direct(self, vcpu):
        if vcpu.saved_gprs is not None:
            self.cpu.regs.load_from(vcpu.saved_gprs)
            # VMRUN loads RAX/RSP from the VMCB save area; propagate the
            # (possibly updated) software copies there, like Xen does.
            vcpu.vmcb.write("rax", vcpu.saved_gprs["rax"])
            vcpu.vmcb.write("rsp", vcpu.saved_gprs["rsp"])

    # -- domain construction ---------------------------------------------------------------

    def create_domain(self, name, guest_frames, sev=False, privileged=False,
                      vcpus=1):
        """Create a domain; with ``sev`` a fresh ASID is assigned.

        The NPT is prepopulated in a batch unless ``lazy_npt`` is set —
        the behaviour Section 4.3.4 leans on for performance.
        """
        domid = self._next_domid
        self._next_domid += 1
        asid = 0
        if sev:
            asid = self._next_asid
            self._next_asid += 1
        domain = Domain(domid, name, self, guest_frames, asid=asid,
                        privileged=privileged)
        domain.npt = NestedPageTable(
            self.machine,
            allocate_frame=_NptTableAllocator(self, domain),
        )
        gt_frame = self.machine.allocator.alloc()
        domain.grant_table = GrantTable(self.machine.memory, gt_frame)
        self._fire("grant_table_created", domain, gt_frame)
        for _ in range(vcpus):
            domain.add_vcpu()
        self.domains[domid] = domain
        self._fire("domain_created", domain)
        if not self.lazy_npt:
            for gfn in range(guest_frames):
                self._populate_gfn(domain, gfn)
        return domain

    # -- IOMMU (extension) -------------------------------------------------------

    def enable_iommu(self):
        """Install an IOMMU in front of device DMA.  Its device table is
        hypervisor-managed memory: under Fidelius it gets write-protected
        and policy-checked exactly like a guest NPT."""
        from repro.hw.iommu import Iommu, ProtectedDmaEngine
        if self.iommu is not None:
            raise XenError("IOMMU already enabled")
        self.iommu = Iommu(NestedPageTable(
            self.machine, allocate_frame=self._alloc_iommu_table_page))
        self.machine.dma = ProtectedDmaEngine(self.machine.memctrl,
                                              self.iommu)
        return self.iommu

    def _alloc_iommu_table_page(self):
        pfn = self.machine.allocator.alloc()
        self.machine.memory.zero_frame(pfn)
        if self.iommu is not None:
            self.iommu.table.table_pfns.add(pfn)
        self._fire("iommu_table_alloc", pfn)
        return pfn

    def iommu_map(self, bus_gfn, hpfn, writable=True):
        """Map a frame into the device's bus address space, through the
        software (gated, policy-checked) write path."""
        if self.iommu is None:
            raise XenError("no IOMMU enabled")
        from repro.common.constants import (
            PTE_PRESENT, PTE_USER, PTE_WRITABLE as W,
        )
        flags = PTE_PRESENT | PTE_USER | (W if writable else 0)
        walker = PageTableWalker(
            self.machine.memory,
            alloc_frame=self._alloc_iommu_table_page,
            write_word=lambda pa, value:
                self.write_word(pa, value.to_bytes(8, "little")),
        )
        walker.map(self.iommu.table.root_pfn, bus_gfn * PAGE_SIZE, hpfn,
                   flags)

    def iommu_unmap(self, bus_gfn):
        if self.iommu is None:
            raise XenError("no IOMMU enabled")
        entry_pa = self.iommu.table.entry_pa(bus_gfn * PAGE_SIZE)
        self.write_word(entry_pa, bytes(8))

    def _alloc_npt_table_page(self, domain):
        pfn = self.machine.allocator.alloc()
        self.machine.memory.zero_frame(pfn)
        if domain.npt is not None:
            domain.npt.table_pfns.add(pfn)
        self._fire("npt_table_alloc", domain, pfn)
        return pfn

    def alloc_guest_frame(self, domain):
        # Deliberately no scrub here: vanilla Xen recycles frames as-is
        # and relies on the previous owner's teardown path — which is
        # exactly the residue channel Fidelius's release scrubbing (and
        # Section 4.3.8's page revocation) closes.
        pfn = self.machine.allocator.alloc()
        domain.owned_hpfns.add(pfn)
        self._fire("guest_frame_alloc", domain, pfn)
        return pfn

    def _populate_gfn(self, domain, gfn):
        hpfn = self.alloc_guest_frame(domain)
        self.fill_npt(domain, gfn, hpfn)
        return hpfn

    # -- NPT management (software path) ---------------------------------------------------------

    def _software_npt_walker(self, domain):
        return PageTableWalker(
            self.machine.memory,
            alloc_frame=lambda: self._alloc_npt_table_page(domain),
            write_word=lambda pa, value:
                self.write_word(pa, value.to_bytes(8, "little")),
        )

    def fill_npt(self, domain, gfn, hpfn, writable=True, c_bit=False):
        """Install GPA->HPA through the software (gated) write path."""
        from repro.common.constants import (
            PTE_C_BIT, PTE_PRESENT, PTE_USER, PTE_WRITABLE as W,
        )
        flags = PTE_PRESENT | PTE_USER
        if writable:
            flags |= W
        if c_bit:
            flags |= PTE_C_BIT
        walker = self._software_npt_walker(domain)
        walker.map(domain.npt.root_pfn, gfn * PAGE_SIZE, hpfn, flags)

    def set_npt_flags(self, domain, gfn, set_mask=0, clear_mask=0):
        entry_pa = domain.npt.entry_pa(gfn * PAGE_SIZE)
        entry = self.machine.memory.read_u64(entry_pa)
        new = (entry | set_mask) & ~clear_mask
        self.write_word(entry_pa, new.to_bytes(8, "little"))

    def unmap_npt(self, domain, gfn):
        entry_pa = domain.npt.entry_pa(gfn * PAGE_SIZE)
        self.write_word(entry_pa, bytes(8))

    # -- exit / entry path ----------------------------------------------------------------------

    def inject_interrupt(self, vcpu, vector):
        """Queue an interrupt for delivery at the next VMRUN.

        The hypervisor writes the VMCB's ``event_injection`` field —
        always legitimate, which is why the exit-reason policies keep
        that one field writable on every exit (Section 5.1)."""
        if not 0 <= vector <= 255:
            raise XenError("bad interrupt vector %r" % (vector,))
        vcpu.vmcb.write("event_injection", 0x8000_0000 | vector)

    @staticmethod
    def _deliver_pending_event(vcpu):
        """VMRUN side: hardware injects the queued event into the guest."""
        pending = vcpu.vmcb.read("event_injection")
        if pending & 0x8000_0000:
            vcpu.delivered_interrupts.append(pending & 0xFF)
            vcpu.vmcb.write("event_injection", 0)

    def enter_guest(self, vcpu):
        if vcpu.domain.dying:
            raise XenError("domain %s is shut down" % vcpu.domain.name)
        self.regs_restorer(vcpu)
        self.vmrun_executor(vcpu)
        self._deliver_pending_event(vcpu)
        vcpu.in_guest = True
        vcpu.domain.ledger.vmruns += 1
        vcpu.entry_cycles = self.machine.cycles.total
        self.current_vcpu = vcpu

    def guest_exit(self, vcpu, reason, info1=0, info2=0, stay_in_host=False):
        """The full exit -> handle -> re-entry round trip."""
        ledger = vcpu.domain.ledger
        ledger.vmexits += 1
        ledger.cycles_in_guest += self.machine.cycles.total \
            - vcpu.entry_cycles
        self.machine.cycles.charge(VMEXIT_ROUNDTRIP_CYCLES, "vmexit-roundtrip")
        self.cpu.vmexit(vcpu.vmcb, reason, info1, info2)
        vcpu.in_guest = False
        self.current_vcpu = None
        self.regs_saver(vcpu)
        self._stay_in_host = stay_in_host
        self.handle_exit(vcpu)
        if not self._stay_in_host:
            self.enter_guest(vcpu)

    def handle_exit(self, vcpu):
        reason = vcpu.vmcb.exit_reason
        if reason is ExitReason.HYPERCALL:
            self._handle_hypercall(vcpu)
        elif reason is ExitReason.CPUID:
            self._handle_cpuid(vcpu)
        elif reason is ExitReason.NPF:
            self._handle_npf(vcpu)
        elif reason is ExitReason.MSR:
            self._handle_msr(vcpu)
        elif reason is ExitReason.HLT:
            self._stay_in_host = True
        elif reason is ExitReason.INTR:
            # External interrupt (e.g. the scheduler's timer tick): the
            # host handles it and decides who runs next.
            self._stay_in_host = True
        else:
            raise XenError("unhandled exit reason %r" % (reason,))

    def _handle_hypercall(self, vcpu):
        # Handlers read and write the *software save area* — exactly like
        # real Xen operating on its stack copy of the guest registers.
        # The entry path restores the register file from it.
        self.machine.cycles.charge(HYPERCALL_SERVICE_CYCLES, "hypercall")
        regs = vcpu.saved_gprs
        handler = self._hypercall_table.get(regs["rax"])
        if handler is None:
            regs["rax"] = hc.E_NOSYS
            return
        result = handler(vcpu, regs["rdi"], regs["rsi"], regs["rdx"],
                         regs["r10"], regs["r8"])
        regs["rax"] = result

    def register_hypercall(self, nr, handler):
        """Install an extra hypercall (Fidelius adds pre_sharing_op etc.)."""
        self._hypercall_table[nr] = handler

    def _handle_cpuid(self, vcpu):
        regs = vcpu.saved_gprs
        leaf = regs["rax"]
        regs["rax"] = 0x00A20F10  # family/model/stepping-ish
        regs["rbx"] = leaf & 0xFFFF
        regs["rcx"] = 0x5345_5600  # 'SEV\0'
        regs["rdx"] = 0x1

    def _handle_npf(self, vcpu):
        self.machine.cycles.charge(NPT_FILL_CYCLES, "npt-fill")
        gpa = vcpu.vmcb.read("exitinfo2")
        domain = vcpu.domain
        gfn = pfn_of(gpa)
        if gfn >= domain.guest_frames:
            raise XenError("guest %s touched gpa %#x beyond its memory"
                           % (domain.name, gpa))
        if not domain.npt.maps(gpa):
            self._populate_gfn(domain, gfn)

    def _handle_msr(self, vcpu):
        regs = vcpu.saved_gprs
        regs["rax"] = 0
        regs["rdx"] = 0

    # -- hypercall implementations -----------------------------------------------------------------

    def _hc_void(self, vcpu, *args):
        return hc.E_OK

    def _hc_grant_create(self, vcpu, target_domid, gfn, readonly, *_):
        domain = vcpu.domain
        if target_domid not in self.domains:
            return hc.E_INVAL
        if gfn >= domain.guest_frames:
            return hc.E_INVAL
        return self.grant_create(domain, target_domid, gfn, bool(readonly))

    def grant_create(self, domain, target_domid, gfn, readonly):
        """Shared implementation: the *hypervisor* fills the grant entry
        (Section 2.3), through the write-protectable software path."""
        ref = domain.grant_table.find_free_ref()
        entry = GrantEntry(permit=True, readonly=readonly,
                           target_domid=target_domid, gfn=gfn)
        # fidelint: ignore[FID002] -- the software path: word_writer is
        # the type 1 gate under Fidelius, so this write *is* gated.
        domain.grant_table.write_via(ref, entry, self.word_writer)
        return ref

    def _hc_grant_map(self, vcpu, granter_domid, ref, dest_gfn, want_write, *_):
        return self.grant_map(vcpu.domain, granter_domid, ref, dest_gfn,
                              bool(want_write))

    def grant_map(self, caller, granter_domid, ref, dest_gfn, want_write):
        granter = self.domains.get(granter_domid)
        if granter is None or dest_gfn >= caller.guest_frames:
            return hc.E_INVAL
        try:
            entry = granter.grant_table.read(ref)
        except Exception:
            return hc.E_INVAL
        if not entry.permit or entry.target_domid != caller.domid:
            return hc.E_PERM
        if want_write and entry.readonly:
            return hc.E_PERM
        try:
            hpa = granter.npt.hpa_of(entry.gfn * PAGE_SIZE)
        except Exception:
            return hc.E_INVAL
        self.fill_npt(caller, dest_gfn, pfn_of(hpa), writable=want_write)
        return hc.E_OK

    def _hc_grant_unmap(self, vcpu, dest_gfn, *_):
        return self.grant_unmap(vcpu.domain, dest_gfn)

    def grant_unmap(self, caller, dest_gfn):
        if dest_gfn >= caller.guest_frames:
            return hc.E_INVAL
        self.unmap_npt(caller, dest_gfn)
        return hc.E_OK

    def grant_revoke(self, domain, ref):
        """Granter-side removal of a grant entry."""
        # fidelint: ignore[FID002] -- gated software path (word_writer).
        domain.grant_table.write_via(ref, EMPTY_ENTRY, self.word_writer)

    def _hc_evtchn_send(self, vcpu, port, *_):
        try:
            self.events.send(port)
        except XenError:
            return hc.E_INVAL
        return hc.E_OK

    def _hc_sched_yield(self, vcpu, *_):
        self._stay_in_host = True
        return hc.E_OK

    def _hc_balloon_out(self, vcpu, first_gfn, nframes, *_):
        """Ballooning: the guest returns [first_gfn, first_gfn+nframes)
        to the host's free pool."""
        domain = vcpu.domain
        if nframes <= 0 or first_gfn + nframes > domain.guest_frames:
            return hc.E_INVAL
        for gfn in range(first_gfn, first_gfn + nframes):
            try:
                hpa = domain.npt.hpa_of(gfn * PAGE_SIZE)
            except Exception:
                continue  # not populated; nothing to return
            hpfn = pfn_of(hpa)
            if hpfn not in domain.owned_hpfns:
                continue  # grant-mapped foreign page: not the guest's to give
            self.unmap_npt(domain, gfn)
            domain.owned_hpfns.discard(hpfn)
            self._fire("guest_frame_release", domain, hpfn)
            self.machine.allocator.free(hpfn)
        return hc.E_OK

    def _hc_shutdown(self, vcpu, *_):
        self.destroy_domain(vcpu.domain)
        self._stay_in_host = True
        return hc.E_OK

    # -- teardown ----------------------------------------------------------------------------------------

    def destroy_domain(self, domain):
        """Tear a domain down and release every frame it owned: its RAM
        (through the release hooks, so Fidelius scrubs protected pages),
        its NPT table pages and its grant table."""
        domain.dying = True
        self._fire("domain_destroyed", domain)
        allocator = self.machine.allocator
        for hpfn in sorted(domain.owned_hpfns):
            self._fire("guest_frame_release", domain, hpfn)
            if allocator.is_allocated(hpfn):
                allocator.free(hpfn)
        domain.owned_hpfns.clear()
        for pfn in sorted(domain.npt.all_table_pfns()):
            self._fire("table_frame_release", domain, pfn)
            if allocator.is_allocated(pfn):
                allocator.free(pfn)
        self._fire("table_frame_release", domain, domain.grant_table.frame_pfn)
        if allocator.is_allocated(domain.grant_table.frame_pfn):
            allocator.free(domain.grant_table.frame_pfn)
        self.domains.pop(domain.domid, None)

    # -- plain inspection helpers (legitimately needed; also the attack surface) --------------------------

    def read_vmcb(self, vcpu, field):
        return vcpu.vmcb.read(field)

    def write_vmcb(self, vcpu, field, value):
        vcpu.vmcb.write(field, value)

    def guest_frame_hpfn(self, domain, gfn):
        return pfn_of(domain.npt.hpa_of(gfn * PAGE_SIZE))
