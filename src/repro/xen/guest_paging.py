"""Guest-managed page tables: the full two-stage translation.

The base :class:`~repro.xen.domain.GuestContext` addresses guest memory
by guest-physical address with per-page C-bit choices kept in a set —
a convenient shorthand for the guest's page tables.  This module
provides the unabridged article: page tables *inside guest RAM* whose
entries carry the C-bit, walked GVA -> GPA before the NPT's GPA -> HPA
stage (paper Section 2.3, "one complete memory read involves two steps
of hardware-based addressing").

Faithful properties this buys:

* the C-bit decision literally lives in a guest PTE (Figure 1), not in
  simulator state;
* the page-table pages themselves are encrypted guest memory — the
  hypervisor cannot read *or even locate* the guest's address-space
  layout (its CR3 is in the VMCB, masked by Fidelius);
* a replayed/corrupted guest page containing PTEs misdirects only the
  guest itself, never the host structures.
"""

from repro.common.constants import (
    ENTRIES_PER_TABLE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_C_BIT,
    PTE_PRESENT,
    PTE_WRITABLE,
    PT_LEVELS,
    VA_BITS,
)
from repro.common.errors import ReproError
from repro.hw.pagetable import entry_pfn, make_entry


class GuestPageFault(ReproError):
    """The guest's own translation failed (guest-internal #PF)."""

    def __init__(self, gva, write=False, present=False):
        self.gva = gva
        self.write = write
        self.present = present
        super().__init__("guest page fault at gva=%#x (write=%s)"
                         % (gva, write))


def _index(gva, level):
    return (gva >> (PAGE_SHIFT + 9 * (level - 1))) & (ENTRIES_PER_TABLE - 1)


class GuestAddressSpace:
    """One guest-virtual address space, tables allocated from guest RAM."""

    def __init__(self, ctx, pt_base_gfn, pt_pages=8, encrypt_tables=True):
        self.ctx = ctx
        self._free_gfns = list(range(pt_base_gfn, pt_base_gfn + pt_pages))
        self._encrypt_tables = encrypt_tables
        self.table_gfns = []
        self.root_gfn = self._alloc_table()

    def _alloc_table(self):
        if not self._free_gfns:
            raise ReproError("guest page-table pool exhausted")
        gfn = self._free_gfns.pop(0)
        if self._encrypt_tables:
            # real SEV forces guest page-table walks through the guest
            # key; we keep the tables in encrypted pages accordingly
            self.ctx.set_page_encrypted(gfn)
        self.ctx.write(gfn * PAGE_SIZE, bytes(PAGE_SIZE))
        self.table_gfns.append(gfn)
        return gfn

    # -- entry access through guest-physical memory -------------------------------

    def _read_entry(self, table_gfn, index):
        gpa = table_gfn * PAGE_SIZE + index * 8
        return int.from_bytes(self.ctx.read(gpa, 8), "little")

    def _write_entry(self, table_gfn, index, value):
        gpa = table_gfn * PAGE_SIZE + index * 8
        self.ctx.write(gpa, value.to_bytes(8, "little"))

    # -- mapping ------------------------------------------------------------------

    def map(self, gva, gfn, writable=True, encrypted=True):
        """Install ``gva -> gfn`` with the C-bit chosen per page."""
        if not 0 <= gva < (1 << VA_BITS):
            raise ReproError("non-canonical guest virtual address")
        table = self.root_gfn
        for level in range(PT_LEVELS, 1, -1):
            entry = self._read_entry(table, _index(gva, level))
            if not entry & PTE_PRESENT:
                child = self._alloc_table()
                self._write_entry(table, _index(gva, level),
                                  make_entry(child, PTE_PRESENT | PTE_WRITABLE))
                table = child
            else:
                table = entry_pfn(entry)
        flags = PTE_PRESENT | (PTE_WRITABLE if writable else 0) \
            | (PTE_C_BIT if encrypted else 0)
        self._write_entry(table, _index(gva, 1), make_entry(gfn, flags))

    def unmap(self, gva):
        table, index = self._leaf_slot(gva)
        self._write_entry(table, index, 0)

    def _leaf_slot(self, gva):
        table = self.root_gfn
        for level in range(PT_LEVELS, 1, -1):
            entry = self._read_entry(table, _index(gva, level))
            if not entry & PTE_PRESENT:
                raise GuestPageFault(gva)
            table = entry_pfn(entry)
        return table, _index(gva, 1)

    def translate(self, gva, write=False):
        """GVA -> (gpa, c_bit), enforcing the guest's own W bit."""
        table, index = self._leaf_slot(gva)
        entry = self._read_entry(table, index)
        if not entry & PTE_PRESENT:
            raise GuestPageFault(gva, write=write)
        if write and not entry & PTE_WRITABLE:
            raise GuestPageFault(gva, write=True, present=True)
        gpa = entry_pfn(entry) * PAGE_SIZE + (gva & (PAGE_SIZE - 1))
        return gpa, bool(entry & PTE_C_BIT)

    # -- virtual-addressed access -----------------------------------------------------

    def vread(self, gva, length):
        """Read through the full two-stage translation."""
        out = bytearray()
        while length:
            take = min(length, PAGE_SIZE - (gva & (PAGE_SIZE - 1)))
            gpa, c_bit = self.translate(gva, write=False)
            out.extend(self._access(gpa, take, c_bit, write=None))
            gva += take
            length -= take
        return bytes(out)

    def vwrite(self, gva, data):
        view = memoryview(data)
        while view.nbytes:
            take = min(view.nbytes, PAGE_SIZE - (gva & (PAGE_SIZE - 1)))
            gpa, c_bit = self.translate(gva, write=True)
            self._access(gpa, take, c_bit, write=bytes(view[:take]))
            gva += take
            view = view[take:]

    def _access(self, gpa, length, c_bit, write):
        """One page-bounded access with the *PTE's* C-bit in charge."""
        ctx = self.ctx
        translation = ctx._translate(gpa, write=write is not None)
        machine = ctx._machine
        asid = ctx._domain.asid if c_bit else 0
        effective_c = c_bit or translation.c_bit
        if effective_c and not c_bit:
            asid = 0  # NPT-level SME C-bit: host key
        if write is None:
            return machine.memctrl.read(translation.pa, length,
                                        c_bit=effective_c, asid=asid)
        machine.memctrl.write(translation.pa, write,
                              c_bit=effective_c, asid=asid)
        return None


def enable_guest_paging(ctx, pt_base_gfn=None, pt_pages=8,
                        identity_pages=0):
    """Build a :class:`GuestAddressSpace` for a context; optionally
    identity-map the first ``identity_pages`` guest frames (encrypted),
    which is how a real kernel would bootstrap itself."""
    domain = ctx._domain
    if pt_base_gfn is None:
        pt_base_gfn = domain.guest_frames - pt_pages - 8
    space = GuestAddressSpace(ctx, pt_base_gfn, pt_pages=pt_pages)
    for gfn in range(identity_pages):
        space.map(gfn * PAGE_SIZE, gfn, writable=True, encrypted=True)
    return space
