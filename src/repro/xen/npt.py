"""Nested page tables: the GPA -> HPA mapping of one guest.

The NPT is *hypervisor-managed state held in ordinary host frames*,
which is the crux of the paper's Section 2.2 analysis: even with SEV-ES,
the hypervisor can remap guest-physical pages at will — replaying stale
frames past password checks, or mapping a victim's frames into a
conspirator's NPT.  Fidelius therefore write-protects the NPT pages in
the hypervisor's address space and forces updates through the type 1
gate where PIT policies run (Section 4.2.2).

Two write paths exist by design:

* the *raw* path (boot-time construction, Fidelius internals) writes
  through physical memory directly;
* the *software* path returns entry physical addresses so the
  hypervisor performs the write through its own virtual mapping — the
  write that faults once the pages are protected.
"""

from repro.common.constants import (
    PTE_C_BIT,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)
from repro.common.errors import NestedPageFault, PageFault
from repro.common.types import Access, frame_addr, pfn_of
from repro.hw.pagetable import PageTableWalker, entry_pfn


class NestedPageTable:
    """One guest's nested page table."""

    def __init__(self, machine, allocate_frame=None):
        self._machine = machine
        self._alloc = allocate_frame or machine.allocator.alloc
        self._walker = PageTableWalker(machine.memory, alloc_frame=self._alloc)
        self.root_pfn = self._alloc()
        # fidelint: ignore[FID001] -- construction-time zeroing of a
        # fresh table root, before the table carries any mapping.
        machine.memory.zero_frame(self.root_pfn)
        #: PFNs of every NPT page (root + intermediates), for protection.
        self.table_pfns = {self.root_pfn}

    def translate(self, gpa, write=False):
        """Hardware second-level walk; raises :class:`NestedPageFault`."""
        try:
            translation = self._walker.translate(
                self.root_pfn, gpa, Access(write=write), wp=True,
            )
        except PageFault as fault:
            raise NestedPageFault(gpa, write=write, message=str(fault))
        return translation

    def maps(self, gpa):
        try:
            self.translate(gpa)
            return True
        except NestedPageFault:
            return False

    def hpa_of(self, gpa, write=False):
        return self.translate(gpa, write=write).pa

    def c_bit_of(self, gpa):
        """The NPT-level C-bit (SME encryption chosen by the host side)."""
        return self.translate(gpa).c_bit

    # -- raw construction (boot / trusted context) -------------------------------

    def map_raw(self, gpa, hpfn, writable=True, c_bit=False):
        """Install a mapping through the raw path; returns new table pfns."""
        flags = PTE_PRESENT | PTE_USER
        if writable:
            flags |= PTE_WRITABLE
        if c_bit:
            flags |= PTE_C_BIT
        new_tables = self._walker.map(self.root_pfn, gpa, hpfn, flags)
        for _, pfn in new_tables:
            self.table_pfns.add(pfn)
        return [pfn for _, pfn in new_tables]

    def unmap_raw(self, gpa):
        return self._walker.unmap(self.root_pfn, gpa)

    def set_flags_raw(self, gpa, set_mask=0, clear_mask=0):
        self._walker.set_flags(self.root_pfn, gpa, set_mask, clear_mask)

    # -- software path (what the hypervisor must use) ------------------------------

    def entry_pa(self, gpa, level=1):
        """Physical address of the NPT entry, for a software write.

        The caller writes it through its own virtual mapping of the NPT
        page; under Fidelius that page is read-only and the write either
        goes through the type 1 gate or faults.
        """
        return self._walker.entry_pa(self.root_pfn, gpa, level)

    def read_entry(self, gpa, level=1):
        return self._walker.read_entry(self.root_pfn, gpa, level)

    # -- enumeration -----------------------------------------------------------------

    def leaf_mappings(self):
        return list(self._walker.leaf_mappings(self.root_pfn))

    def mapped_hpfns(self):
        return {entry_pfn(entry) for _, entry in self.leaf_mappings()}

    def all_table_pfns(self):
        """Authoritative table-page set recomputed from the tree."""
        return {pfn for _, pfn in self._walker.table_pages(self.root_pfn)}


def npt_entry_va(npt, gpa, level=1):
    """Host direct-map VA of an NPT entry (identity map: VA == PA)."""
    return npt.entry_pa(gpa, level)


def guest_frame_va(npt, gpa):
    """Host direct-map VA of the frame backing ``gpa``."""
    return frame_addr(pfn_of(npt.hpa_of(gpa)))
