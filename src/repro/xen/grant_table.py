"""Grant tables: Xen's inter-domain memory sharing bookkeeping.

Entries live in real host frames, and the *hypervisor* writes them when
servicing ``grant_table_op`` hypercalls (the paper's Section 2.3 model).
Because the hypervisor is in this path, it can manipulate references,
widen a read-only grant to writable, or point a grant at a conspirator
domain — the grant attack surface of Section 2.2.  Fidelius maps these
frames read-only and checks every update against the guest-declared GIT
(Sections 4.2.2, 4.3.7).

Entry layout (16 bytes):
  [0:4)  flags   — bit 0 PERMIT, bit 1 READONLY
  [4:8)  target domain id
  [8:16) granter guest frame number (gfn)
"""

from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import GrantTableError
from repro.common.types import frame_addr

ENTRY_SIZE = 16
ENTRIES_PER_TABLE = PAGE_SIZE // ENTRY_SIZE

FLAG_PERMIT = 1 << 0
FLAG_READONLY = 1 << 1


@dataclass(frozen=True)
class GrantEntry:
    """Decoded view of one grant-table entry."""

    permit: bool
    readonly: bool
    target_domid: int
    gfn: int

    def pack(self):
        flags = (FLAG_PERMIT if self.permit else 0) | \
            (FLAG_READONLY if self.readonly else 0)
        return (
            flags.to_bytes(4, "little")
            + self.target_domid.to_bytes(4, "little")
            + self.gfn.to_bytes(8, "little")
        )

    @classmethod
    def unpack(cls, raw):
        if len(raw) != ENTRY_SIZE:
            raise GrantTableError("grant entry must be %d bytes" % ENTRY_SIZE)
        flags = int.from_bytes(raw[0:4], "little")
        return cls(
            permit=bool(flags & FLAG_PERMIT),
            readonly=bool(flags & FLAG_READONLY),
            target_domid=int.from_bytes(raw[4:8], "little"),
            gfn=int.from_bytes(raw[8:16], "little"),
        )


EMPTY_ENTRY = GrantEntry(permit=False, readonly=False, target_domid=0, gfn=0)


class GrantTable:
    """One domain's grant table, backed by a single host frame."""

    def __init__(self, memory, frame_pfn):
        self._memory = memory
        self.frame_pfn = frame_pfn
        # fidelint: ignore[FID001] -- construction-time zeroing before
        # the frame is handed to the (write-protected) software path.
        memory.zero_frame(frame_pfn)

    def entry_pa(self, ref):
        if not 0 <= ref < ENTRIES_PER_TABLE:
            raise GrantTableError("grant reference %r out of range" % (ref,))
        return frame_addr(self.frame_pfn) + ref * ENTRY_SIZE

    def read(self, ref):
        """Raw (hardware / read-only) view of an entry."""
        return GrantEntry.unpack(self._memory.read(self.entry_pa(ref), ENTRY_SIZE))

    def write_via(self, ref, entry, writer):
        """Write an entry through ``writer(va, data)`` — the software path
        that Fidelius write-protection intercepts (identity map VA == PA)."""
        writer(self.entry_pa(ref), entry.pack())

    def find_free_ref(self):
        for ref in range(ENTRIES_PER_TABLE):
            if not self.read(ref).permit:
                return ref
        raise GrantTableError("grant table full")

    def active_refs(self):
        return [ref for ref in range(ENTRIES_PER_TABLE) if self.read(ref).permit]
