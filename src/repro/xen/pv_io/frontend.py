"""The front-end block driver, running inside the guest.

On setup it establishes the *persistent* shared buffer (paper Section
2.3): a few unencrypted guest pages granted to the driver domain once
and reused for every transfer.  All data passes through a pluggable
``encoder``: the baseline :class:`PlainIoEncoder` moves plaintext (and
so leaks everything to the back end), while Fidelius installs its
AES-NI or SEV-API encoder (Section 4.3.5).
"""

from repro.common.constants import PAGE_SIZE, SECTOR_SIZE
from repro.common.errors import XenError
from repro.xen import hypercalls as hc
from repro.xen.pv_io.ring import BlkRequest, BlkRing


class PlainIoEncoder:
    """No protection: what SEV alone gives you for the I/O path."""

    name = "plain"

    def encode_write(self, data, sector):
        return data

    def decode_read(self, data, sector):
        return data


class BlockFrontend:
    """The in-guest half of the PV block device."""

    def __init__(self, ctx, domain, encoder=None, buffer_pages=4):
        self.ctx = ctx
        self.domain = domain
        self.encoder = encoder or PlainIoEncoder()
        self.buffer_pages = buffer_pages
        self.ring = BlkRing()
        self.buffer_gfns = []
        self.grant_refs = []
        self.event_port = None

    @property
    def buffer_bytes(self):
        return self.buffer_pages * PAGE_SIZE

    def setup(self, event_port):
        """Establish the persistent shared buffer and grant it to dom0.

        The buffer pages are taken from the top of guest memory and made
        *unencrypted* — SEV's DMA constraint (Section 2.2).  The sharing
        context is declared through ``pre_sharing_op`` first; on a
        baseline host that hypercall does not exist and the E_NOSYS is
        ignored.
        """
        self.event_port = event_port
        top = self.domain.guest_frames
        self.buffer_gfns = list(range(top - self.buffer_pages, top))
        for gfn in self.buffer_gfns:
            self.ctx.set_page_encrypted(gfn, False)
        status = self.ctx.hypercall(
            hc.HC_PRE_SHARING, 0, self.buffer_gfns[0], self.buffer_pages, 0)
        if status not in (hc.E_OK, hc.E_NOSYS):
            raise XenError("pre_sharing_op failed: %#x" % status)
        for gfn in self.buffer_gfns:
            ref = self.ctx.hypercall(hc.HC_GRANT_CREATE, 0, gfn, 0)
            if hc.is_error(ref):
                raise XenError("grant_create failed for gfn %d" % gfn)
            self.grant_refs.append(ref)
        return self.grant_refs

    # -- buffer access (guest side) ------------------------------------------------

    def _buffer_gpa(self, offset):
        if offset >= self.buffer_bytes:
            raise XenError("offset %#x beyond shared buffer" % offset)
        page = offset // PAGE_SIZE
        return self.buffer_gfns[page] * PAGE_SIZE + offset % PAGE_SIZE

    def _write_buffer(self, offset, data):
        view = memoryview(data)
        while view.nbytes:
            take = min(view.nbytes, PAGE_SIZE - offset % PAGE_SIZE)
            self.ctx.write(self._buffer_gpa(offset), bytes(view[:take]))
            offset += take
            view = view[take:]

    def _read_buffer(self, offset, length):
        out = bytearray()
        while length:
            take = min(length, PAGE_SIZE - offset % PAGE_SIZE)
            out.extend(self.ctx.read(self._buffer_gpa(offset), take))
            offset += take
            length -= take
        return bytes(out)

    # -- block operations ---------------------------------------------------------

    @staticmethod
    def _pad_to_sector(data):
        if len(data) % SECTOR_SIZE:
            data = data + bytes(SECTOR_SIZE - len(data) % SECTOR_SIZE)
        return data

    def _kick(self):
        status = self.ctx.hypercall(hc.HC_EVTCHN_SEND, self.event_port)
        if status != hc.E_OK:
            raise XenError("event channel kick failed")

    def write(self, sector, data):
        """Write ``data`` (padded to sectors) at ``sector``."""
        data = self._pad_to_sector(data)
        count = len(data) // SECTOR_SIZE
        if len(data) > self.buffer_bytes:
            raise XenError("request larger than persistent buffer")
        encoded = self.encoder.encode_write(data, sector)
        self._write_buffer(0, encoded)
        self.ring.push_request(
            BlkRequest(op="write", sector=sector, count=count, buffer_offset=0))
        self._kick()
        response = self.ring.pop_response()
        if response.status != 0:
            raise XenError("block write failed")
        return count

    def read(self, sector, count):
        """Read ``count`` sectors starting at ``sector``."""
        length = count * SECTOR_SIZE
        if length > self.buffer_bytes:
            raise XenError("request larger than persistent buffer")
        self.ring.push_request(
            BlkRequest(op="read", sector=sector, count=count, buffer_offset=0))
        self._kick()
        response = self.ring.pop_response()
        if response.status != 0:
            raise XenError("block read failed")
        encoded = self._read_buffer(0, length)
        return self.encoder.decode_read(encoded, sector)


def connect_block_device(hypervisor, domain, ctx, disk, encoder=None,
                         buffer_pages=4):
    """Wire a front end in ``domain`` to a back end in dom0 over ``disk``.

    Performs the roles the toolstack plays on real Xen: allocates the
    event channel, lets the front end establish and grant its buffer,
    publishes the references in XenStore, and attaches the back end.
    Returns ``(frontend, backend)``.
    """
    from repro.xen.pv_io.backend import BlockBackend

    channel = hypervisor.events.alloc(domain.domid, hypervisor.dom0.domid)
    frontend = BlockFrontend(ctx, domain, encoder=encoder,
                             buffer_pages=buffer_pages)
    refs = frontend.setup(channel.port)
    store = hypervisor.xenstore
    base = "/local/domain/%d/device/vbd/0" % domain.domid
    store.write(base + "/ring-refs", ",".join(str(r) for r in refs))
    store.write(base + "/event-channel", str(channel.port))
    backend = BlockBackend(hypervisor, disk, frontend.ring, domain.domid,
                           refs, channel.port)
    return frontend, backend
