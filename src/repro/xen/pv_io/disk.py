"""The virtual disk behind the back-end driver.

Sector-addressed storage owned by the driver domain.  Its contents are
an attack surface in their own right: whatever the back end writes here
is visible to the whole untrusted host, and to anyone who steals the
image at rest — which is why guests under Fidelius keep the image
encrypted with ``K_blk`` (AES-NI path) or ``K_tek`` (SEV-API path).
"""

from repro.common.constants import SECTOR_SIZE
from repro.common.errors import XenError


class VirtualDisk:
    """A sparse sector store."""

    def __init__(self, sectors):
        if sectors <= 0:
            raise ValueError("disk needs at least one sector")
        self.sectors = sectors
        self._data = {}
        self.reads = 0
        self.writes = 0

    def _check(self, sector, count=1):
        if sector < 0 or sector + count > self.sectors:
            raise XenError("sector range [%d, %d) beyond disk"
                           % (sector, sector + count))

    def read_sectors(self, sector, count):
        self._check(sector, count)
        self.reads += count
        out = bytearray()
        for s in range(sector, sector + count):
            out.extend(self._data.get(s, bytes(SECTOR_SIZE)))
        return bytes(out)

    def write_sectors(self, sector, data):
        if len(data) % SECTOR_SIZE:
            raise XenError("disk writes must be sector-aligned")
        count = len(data) // SECTOR_SIZE
        self._check(sector, count)
        self.writes += count
        for i in range(count):
            self._data[sector + i] = bytes(
                data[i * SECTOR_SIZE:(i + 1) * SECTOR_SIZE])

    def load_image(self, sector, image):
        """Populate the disk with an image, padding to sector size."""
        if len(image) % SECTOR_SIZE:
            image = image + bytes(SECTOR_SIZE - len(image) % SECTOR_SIZE)
        self.write_sectors(sector, image)

    def raw_sector(self, sector):
        """What an at-rest attacker (or the host) sees for one sector."""
        self._check(sector)
        return self._data.get(sector, bytes(SECTOR_SIZE))
