"""The shared request/response ring between front and back ends.

Requests are batched: the front end pushes several and kicks the event
channel once — the behaviour behind the paper's observation that PV I/O
"can outperform the emulated I/O interface as the transferred data are
batched" (Section 2.3), and behind Table 3's write-batching asymmetry.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.errors import XenError


@dataclass
class BlkRequest:
    """One block request referencing the persistent shared buffer."""

    op: str                 # "read" or "write"
    sector: int
    count: int              # sectors
    buffer_offset: int      # byte offset into the shared buffer area
    request_id: int = 0

    def __post_init__(self):
        if self.op not in ("read", "write"):
            raise XenError("bad block op %r" % (self.op,))


@dataclass
class BlkResponse:
    request_id: int
    status: int             # 0 = OK


class BlkRing:
    """A bounded ring of requests and responses."""

    def __init__(self, capacity=32):
        self.capacity = capacity
        self._requests = deque()
        self._responses = deque()
        self._next_id = 1

    def push_request(self, request):
        if len(self._requests) >= self.capacity:
            raise XenError("ring full")
        request.request_id = self._next_id
        self._next_id += 1
        self._requests.append(request)
        return request.request_id

    def pop_request(self):
        if not self._requests:
            return None
        return self._requests.popleft()

    def push_response(self, response):
        self._responses.append(response)

    def pop_response(self):
        if not self._responses:
            raise XenError("no response on ring")
        return self._responses.popleft()

    @property
    def pending_requests(self):
        return len(self._requests)

    @property
    def pending_responses(self):
        return len(self._responses)
