"""The back-end block driver, running in the (untrusted) driver domain.

It maps the front end's persistent shared buffer through the grant
mechanism, moves bytes between that buffer and the virtual disk, and —
because this code is part of the untrusted host — records everything it
observes in ``observed`` so the security evaluation can check exactly
what leaked.
"""

from repro.common.constants import PAGE_SIZE, SECTOR_SIZE
from repro.common.errors import XenError
from repro.common.types import pfn_of
from repro.xen import hypercalls as hc
from repro.xen.pv_io.ring import BlkResponse


class BlockBackend:
    """One block device's back end, bound to one front end."""

    def __init__(self, hypervisor, disk, ring, granter_domid, buffer_refs,
                 event_port):
        self._hv = hypervisor
        self._dom0 = hypervisor.dom0
        self.disk = disk
        self.ring = ring
        self.granter_domid = granter_domid
        #: Every byte this untrusted driver saw in flight, by direction.
        self.observed = []
        self._buffer_gfns = self._map_buffers(buffer_refs)
        hypervisor.events.bind(event_port, self._on_kick)

    def _map_buffers(self, buffer_refs):
        """Map the persistent shared pages into dom0 (grant mechanism).

        If the host has an IOMMU, the buffers are also mapped into the
        device's bus space so the disk can DMA them — the only frames a
        device can then reach at all."""
        dest_gfns = []
        base = self._dom0.guest_frames - len(buffer_refs) - 1
        for i, ref in enumerate(buffer_refs):
            dest_gfn = base + i
            status = self._hv.grant_map(
                self._dom0, self.granter_domid, ref, dest_gfn, want_write=True)
            if status != hc.E_OK:
                raise XenError("backend failed to map grant ref %d" % ref)
            dest_gfns.append(dest_gfn)
            if self._hv.iommu is not None:
                hpa = self._dom0.npt.hpa_of(dest_gfn * PAGE_SIZE)
                self._hv.iommu_map(dest_gfn, pfn_of(hpa), writable=True)
        return dest_gfns

    def _buffer_hpa(self, offset):
        page = offset // PAGE_SIZE
        if page >= len(self._buffer_gfns):
            raise XenError("buffer offset %#x beyond shared area" % offset)
        gpa = self._buffer_gfns[page] * PAGE_SIZE + offset % PAGE_SIZE
        return self._dom0.npt.hpa_of(gpa)

    def _read_buffer(self, offset, length):
        out = bytearray()
        while length:
            take = min(length, PAGE_SIZE - offset % PAGE_SIZE)
            hpa = self._buffer_hpa(offset)
            out.extend(self._hv.machine.memctrl.read(hpa, take))
            offset += take
            length -= take
        return bytes(out)

    def _write_buffer(self, offset, data):
        view = memoryview(data)
        while view.nbytes:
            take = min(view.nbytes, PAGE_SIZE - offset % PAGE_SIZE)
            hpa = self._buffer_hpa(offset)
            self._hv.machine.memctrl.write(hpa, bytes(view[:take]))
            offset += take
            view = view[take:]

    # -- request processing -----------------------------------------------------

    def _on_kick(self, channel):
        """Event-channel handler: drain the ring."""
        while True:
            request = self.ring.pop_request()
            if request is None:
                break
            self._process(request)

    def _process(self, request):
        length = request.count * SECTOR_SIZE
        if request.op == "write":
            data = self._read_buffer(request.buffer_offset, length)
            self.observed.append(("write", request.sector, data))
            self.disk.write_sectors(request.sector, data)
        else:
            data = self.disk.read_sectors(request.sector, request.count)
            self.observed.append(("read", request.sector, data))
            self._write_buffer(request.buffer_offset, data)
        self.ring.push_response(BlkResponse(request.request_id, status=0))

    # -- attack helper -----------------------------------------------------------

    def everything_observed(self):
        """Concatenation of all in-flight bytes this driver domain saw."""
        return b"".join(data for _, _, data in self.observed)
