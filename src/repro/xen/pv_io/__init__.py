"""Para-virtualized block I/O: front-end / back-end drivers over a
shared ring with persistent granted buffers (paper Section 2.3).

The data path is the paper's exact threat surface: buffer pages must be
*unencrypted* guest memory (SEV forbids DMA to encrypted pages), so by
default the driver domain sees every byte in flight.  Fidelius plugs an
I/O *encoder* into the front end (Section 4.3.5) so only ciphertext
crosses the shared buffer.
"""

from repro.xen.pv_io.backend import BlockBackend
from repro.xen.pv_io.disk import VirtualDisk
from repro.xen.pv_io.frontend import BlockFrontend, PlainIoEncoder
from repro.xen.pv_io.net import (
    NetBackend,
    NetFrontend,
    VirtualWire,
    connect_net_device,
)
from repro.xen.pv_io.ring import BlkRequest, BlkResponse, BlkRing
from repro.xen.pv_io.secure_channel import SecureClient, SecureServer

__all__ = [
    "BlockBackend",
    "VirtualDisk",
    "BlockFrontend",
    "PlainIoEncoder",
    "BlkRequest",
    "BlkResponse",
    "BlkRing",
    "NetBackend",
    "NetFrontend",
    "VirtualWire",
    "connect_net_device",
    "SecureClient",
    "SecureServer",
]
