"""An SSL-style secure channel over the PV network path.

The paper's treatment of network I/O is one assumption: "network I/O
data has been protected by the SSL protocol" (Section 4.3.5).  This
module makes the assumption concrete so the security evaluation can
check it: a pinned-key handshake plus sequence-numbered, authenticated,
encrypted records between the guest application and a remote server —
relayed verbatim by the untrusted driver domain.

Protocol (TLS in miniature):

1. the server's static DH public value is *pinned* in the guest (it
   ships inside the encrypted kernel image, like a CA bundle), so a
   man-in-the-middle hypervisor cannot substitute its own key;
2. the client sends an ephemeral DH public value and a nonce;
3. both sides derive direction keys from the shared secret;
4. records are ``seq || ciphertext || tag``; the sequence number is
   the cipher tweak and is covered by the MAC, so replayed, reordered
   or tampered records are rejected.
"""

from dataclasses import dataclass

from repro.common import crypto
from repro.common.errors import ReproError

_SEQ_BYTES = 8
_TAG_BYTES = 32


class ChannelError(ReproError):
    """Handshake or record verification failed."""


def _derive_keys(shared, nonce):
    return (crypto.derive_key(shared + nonce, "c2s"),
            crypto.derive_key(shared + nonce, "s2c"))


class _RecordLayer:
    """One direction pair of record codecs with replay protection."""

    def __init__(self, send_key, recv_key):
        self._send_key = send_key
        self._recv_key = recv_key
        self._send_seq = 0
        self._recv_seq = 0

    def seal(self, plaintext):
        seq = self._send_seq.to_bytes(_SEQ_BYTES, "little")
        ciphertext = crypto.xex_encrypt(self._send_key, b"rec|" + seq,
                                        plaintext)
        tag = crypto.hmac_measure(self._send_key, seq + ciphertext)
        self._send_seq += 1
        return seq + ciphertext + tag

    def open(self, record):
        if len(record) < _SEQ_BYTES + _TAG_BYTES:
            raise ChannelError("record truncated")
        seq = record[:_SEQ_BYTES]
        ciphertext = record[_SEQ_BYTES:-_TAG_BYTES]
        tag = record[-_TAG_BYTES:]
        expect = crypto.hmac_measure(self._recv_key, seq + ciphertext)
        if not crypto.constant_time_equal(tag, expect):
            raise ChannelError("record authentication failed")
        if int.from_bytes(seq, "little") != self._recv_seq:
            raise ChannelError("record replayed or reordered")
        self._recv_seq += 1
        return crypto.xex_decrypt(self._recv_key, b"rec|" + seq, ciphertext)


@dataclass
class ClientHello:
    ephemeral_public: int
    nonce: bytes


class SecureServer:
    """The remote endpoint, living past the virtual wire."""

    def __init__(self, rng):
        self._dh = crypto.DiffieHellman(rng)
        self.received = []
        self._layer = None

    @property
    def pinned_public(self):
        """What the guest owner bakes into the kernel image."""
        return self._dh.public

    def accept(self, hello):
        shared = self._dh.shared_secret(hello.ephemeral_public, hello.nonce)
        shared_bytes = shared if isinstance(shared, bytes) else bytes(shared)
        c2s, s2c = _derive_keys(shared_bytes, hello.nonce)
        self._layer = _RecordLayer(send_key=s2c, recv_key=c2s)

    def handle_record(self, record):
        """Decrypt a request, remember it, answer with an echo."""
        plaintext = self._layer.open(record)
        self.received.append(plaintext)
        return self._layer.seal(b"ack:" + plaintext)


class SecureClient:
    """The in-guest endpoint, speaking through a NetFrontend."""

    def __init__(self, frontend, pinned_server_public, rng):
        self._frontend = frontend
        self._pinned = pinned_server_public
        self._rng = rng
        self._layer = None

    def handshake(self, server):
        """Key exchange; ``server`` is reached over the (relayed) wire.

        The hello travels through the same untrusted path as data —
        that is fine, it contains only public values.  The *server key*
        does not travel at all: it is pinned.
        """
        if server.pinned_public != self._pinned:
            raise ChannelError("server key does not match the pinned key "
                               "(man in the middle)")
        ephemeral = crypto.DiffieHellman(self._rng)
        nonce = bytes(self._rng.getrandbits(8) for _ in range(16))
        shared = ephemeral.shared_secret(self._pinned, nonce)
        shared_bytes = shared if isinstance(shared, bytes) else bytes(shared)
        c2s, s2c = _derive_keys(shared_bytes, nonce)
        self._layer = _RecordLayer(send_key=c2s, recv_key=s2c)
        server.accept(ClientHello(ephemeral.public, nonce))

    def request(self, payload, server):
        """One round trip: seal, transmit, let the wire deliver, read
        the sealed response back."""
        if self._layer is None:
            raise ChannelError("handshake first")
        self._frontend.send(self._layer.seal(payload))
        frame = self._frontend.backend.wire.pop_for_remote()
        if frame is None:
            raise ChannelError("frame lost on the wire")
        response = server.handle_record(frame.payload)
        self._frontend.backend.wire.deliver_to_guest(response)
        sealed = self._frontend.receive()
        return self._layer.open(sealed)
