"""Para-virtualized network I/O: front/back drivers over shared pages.

The paper sets network I/O aside with one sentence — "network I/O data
has been protected by the SSL protocol" (Section 4.3.5) — so this
module supplies exactly that picture: a PV vNIC whose in-flight frames
cross the untrusted driver domain, plus (in ``secure_channel``) the
SSL-style session that makes the exposure harmless.

The data path mirrors the block device: a persistent granted buffer,
a request ring, an event-channel kick, and a back end that records
every byte it forwards — the audit surface for the security tests.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import XenError
from repro.xen import hypercalls as hc

MAX_FRAME = 1514  # classic Ethernet MTU + header


@dataclass
class NetFrame:
    payload: bytes


class VirtualWire:
    """The physical network behind the driver domain's NIC."""

    def __init__(self):
        self._to_remote = deque()
        self._to_guest = deque()
        #: the remote peer drains ``_to_remote`` and fills ``_to_guest``
        self.remote_rx = []

    def transmit_to_remote(self, frame):
        self._to_remote.append(frame)

    def deliver_to_guest(self, payload):
        if len(payload) > MAX_FRAME:
            raise XenError("frame exceeds MTU")
        self._to_guest.append(NetFrame(bytes(payload)))

    def pop_for_remote(self):
        if not self._to_remote:
            return None
        frame = self._to_remote.popleft()
        self.remote_rx.append(frame.payload)
        return frame

    def pop_for_guest(self):
        return self._to_guest.popleft() if self._to_guest else None


class NetBackend:
    """The dom0 half: moves frames between the shared buffer and the
    wire, observing everything (it is untrusted)."""

    def __init__(self, hypervisor, wire, granter_domid, buffer_refs,
                 event_port):
        self._hv = hypervisor
        self._dom0 = hypervisor.dom0
        self.wire = wire
        self.observed = []
        self._tx_queue = deque()
        self._buffer_gfns = self._map_buffers(granter_domid, buffer_refs)
        hypervisor.events.bind(event_port, self._on_kick)

    def _map_buffers(self, granter_domid, refs):
        gfns = []
        base = self._dom0.guest_frames - len(refs) - 8
        for i, ref in enumerate(refs):
            dest = base + i
            status = self._hv.grant_map(self._dom0, granter_domid, ref,
                                        dest, want_write=True)
            if status != hc.E_OK:
                raise XenError("net backend failed to map ref %d" % ref)
            gfns.append(dest)
        return gfns

    def _buffer_rw(self, offset, length=None, data=None):
        page = self._buffer_gfns[offset // PAGE_SIZE]
        hpa = self._dom0.npt.hpa_of(page * PAGE_SIZE) + offset % PAGE_SIZE
        memctrl = self._hv.machine.memctrl
        if data is None:
            return memctrl.read(hpa, length)
        memctrl.write(hpa, data)
        return None

    def enqueue_tx(self, offset, length):
        self._tx_queue.append((offset, length))

    def _on_kick(self, channel):
        while self._tx_queue:
            offset, length = self._tx_queue.popleft()
            payload = self._buffer_rw(offset, length=length)
            self.observed.append(("tx", payload))
            self.wire.transmit_to_remote(NetFrame(payload))

    def pump_rx(self, offset):
        """Pull one frame off the wire into the shared buffer; returns
        its length or 0."""
        frame = self.wire.pop_for_guest()
        if frame is None:
            return 0
        self.observed.append(("rx", frame.payload))
        self._buffer_rw(offset, data=frame.payload)
        return len(frame.payload)

    def everything_observed(self):
        return b"".join(payload for _, payload in self.observed)


class NetFrontend:
    """The in-guest vNIC driver."""

    def __init__(self, ctx, domain, buffer_pages=2):
        self.ctx = ctx
        self.domain = domain
        self.buffer_pages = buffer_pages
        self.buffer_gfns = []
        self.event_port = None
        self.backend = None

    def setup(self, event_port, first_gfn=None):
        self.event_port = event_port
        if first_gfn is None:
            first_gfn = self.domain.guest_frames - 3 * self.buffer_pages
        self.buffer_gfns = list(range(first_gfn,
                                      first_gfn + self.buffer_pages))
        for gfn in self.buffer_gfns:
            self.ctx.set_page_encrypted(gfn, False)
        status = self.ctx.hypercall(hc.HC_PRE_SHARING, 0,
                                    self.buffer_gfns[0],
                                    self.buffer_pages, 0)
        if status not in (hc.E_OK, hc.E_NOSYS):
            raise XenError("net pre-sharing failed")
        refs = []
        for gfn in self.buffer_gfns:
            ref = self.ctx.hypercall(hc.HC_GRANT_CREATE, 0, gfn, 0)
            if hc.is_error(ref):
                raise XenError("net grant failed")
            refs.append(ref)
        return refs

    def _buffer_gpa(self, offset):
        page = self.buffer_gfns[offset // PAGE_SIZE]
        return page * PAGE_SIZE + offset % PAGE_SIZE

    def send(self, payload):
        """Transmit one frame (whatever bytes the application hands us —
        plaintext unless a secure channel wrapped them)."""
        if len(payload) > MAX_FRAME:
            raise XenError("frame exceeds MTU")
        self.ctx.write(self._buffer_gpa(0), payload)
        self.backend.enqueue_tx(0, len(payload))
        status = self.ctx.hypercall(hc.HC_EVTCHN_SEND, self.event_port)
        if status != hc.E_OK:
            raise XenError("net kick failed")

    def receive(self):
        """Poll one frame; None if the wire is quiet."""
        rx_offset = PAGE_SIZE  # second buffer page is the rx area
        length = self.backend.pump_rx(rx_offset)
        if length == 0:
            return None
        return self.ctx.read(self._buffer_gpa(rx_offset), length)


def connect_net_device(hypervisor, domain, ctx, wire=None, buffer_pages=2):
    """Wire a vNIC front end to a dom0 back end over a virtual wire."""
    wire = wire or VirtualWire()
    channel = hypervisor.events.alloc(domain.domid, hypervisor.dom0.domid)
    frontend = NetFrontend(ctx, domain, buffer_pages=buffer_pages)
    refs = frontend.setup(channel.port)
    backend = NetBackend(hypervisor, wire, domain.domid, refs, channel.port)
    frontend.backend = backend
    store = hypervisor.xenstore
    base = "/local/domain/%d/device/vif/0" % domain.domid
    store.write(base + "/ring-refs", ",".join(str(r) for r in refs))
    store.write(base + "/event-channel", str(channel.port))
    return frontend, backend, wire
