"""Hypercall numbers and error codes for the Xen substrate."""

# Hypercall numbers (guest -> host, in RAX).
HC_VOID = 0            # no-op; the micro benchmark of Section 7.2
HC_GRANT_CREATE = 1    # (target_domid, gfn, readonly) -> grant ref
HC_GRANT_MAP = 2       # (granter_domid, ref, dest_gfn, want_write) -> status
HC_GRANT_UNMAP = 3     # (dest_gfn) -> status
HC_EVTCHN_SEND = 4     # (port) -> status
HC_SCHED_YIELD = 5     # relinquish the CPU; host keeps control
HC_SHUTDOWN = 6        # terminate the calling domain
HC_ENCRYPT_FREE_PAGES = 7  # Fidelius: set NPT C-bits for SME encryption
HC_PRE_SHARING = 8     # Fidelius: declare a sharing context in the GIT
HC_BALLOON_OUT = 9     # (first_gfn, nframes): return pages to the host

# Return codes, as unsigned 64-bit values in RAX.
E_OK = 0
_ERR = 2 ** 64


def _err(code):
    return _ERR - code


E_INVAL = _err(22)
E_PERM = _err(1)
E_NOMEM = _err(12)
E_NOSYS = _err(38)

ERROR_VALUES = {E_INVAL, E_PERM, E_NOMEM, E_NOSYS}


def is_error(value):
    return value in ERROR_VALUES
