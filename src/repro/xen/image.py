"""Synthetic code images for Xen and Fidelius text sections.

Real Fidelius guarantees the *monopoly* of restricted privileged
instructions by scanning the hypervisor binary for their encodings —
at any byte offset, aligned to instruction boundaries or not (paper
Section 4.1.2).  To give that scanner something real to chew on, we lay
the hypervisor's text out as actual bytes in physical memory: NOP filler
plus the genuine x86 encodings of the restricted instructions at known
offsets.  The CPU model fetches these bytes before executing a
privileged operation, so unmapping or rewriting them has exactly the
architectural effect the paper relies on.
"""

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.common.types import PRIV_OPCODES, PrivOp

NOP = 0x90


class CodeImage:
    """A contiguous text section with placed privileged instructions."""

    def __init__(self, base_va, pages):
        self.base_va = base_va
        self.pages = pages
        self.size = pages * PAGE_SIZE
        self._bytes = bytearray([NOP]) * 1  # placeholder, replaced below
        self._bytes = bytearray([NOP] * self.size)
        self._placements = {}

    def place(self, op, offset):
        """Place the encoding of ``op`` at ``offset``; returns its VA."""
        encoding = PRIV_OPCODES[op]
        if offset < 0 or offset + len(encoding) > self.size:
            raise ReproError("placement of %s outside image" % op)
        self._bytes[offset:offset + len(encoding)] = encoding
        self._placements[op] = offset
        return self.base_va + offset

    def erase(self, op):
        """Overwrite the placed encoding of ``op`` with NOPs.

        This is Fidelius's binary rewrite of the hypervisor: the stray
        copy is removed so the monopoly instance in Fidelius's text is
        the only one left.
        """
        offset = self._placements.pop(op, None)
        if offset is None:
            return None
        size = len(PRIV_OPCODES[op])
        self._bytes[offset:offset + size] = bytes([NOP] * size)
        return offset

    def va_of(self, op):
        offset = self._placements.get(op)
        if offset is None:
            raise ReproError("%s not placed in this image" % op)
        return self.base_va + offset

    def has(self, op):
        return op in self._placements

    def to_bytes(self):
        return bytes(self._bytes)

    def page_vas(self):
        return [self.base_va + i * PAGE_SIZE for i in range(self.pages)]


def default_xen_image(base_va, pages=4):
    """Xen's text as shipped: every restricted instruction present.

    ``mov CR3`` is deliberately placed in the last bytes of a page so
    that the instruction following it sits on the next page — the
    placement requirement the paper discusses for address-space
    switching gates (Section 4.1.2).
    """
    image = CodeImage(base_va, pages)
    image.place(PrivOp.MOV_CR0, 0x100)
    image.place(PrivOp.MOV_CR4, 0x140)
    image.place(PrivOp.WRMSR, 0x180)
    image.place(PrivOp.LGDT, 0x1C0)
    image.place(PrivOp.LIDT, 0x200)
    image.place(PrivOp.VMRUN, 0x240)
    image.place(PrivOp.MOV_CR3, PAGE_SIZE - len(PRIV_OPCODES[PrivOp.MOV_CR3]))
    return image


def default_fidelius_image(base_va, pages=2):
    """Fidelius's text: the monopoly copies wrapped by gate logic.

    The MOV_CR0/CR4/WRMSR/LGDT/LIDT copies live on the first page, which
    stays mapped executable in Xen's space (type 2 gates guard them).
    VMRUN and ``mov CR3`` live on the second page, which is unmapped
    from Xen's space and only appears transiently inside type 3 gates;
    ``mov CR3`` again ends its page with the follow-on code placed at
    the start of the *first* (always-mapped) page... in our layout the
    next byte simply belongs to the transiently mapped page, which the
    gate keeps mapped until the switch completes.
    """
    image = CodeImage(base_va, pages)
    image.place(PrivOp.MOV_CR0, 0x80)
    image.place(PrivOp.MOV_CR4, 0xC0)
    image.place(PrivOp.WRMSR, 0x100)
    image.place(PrivOp.LGDT, 0x140)
    image.place(PrivOp.LIDT, 0x180)
    image.place(PrivOp.VMRUN, PAGE_SIZE + 0x40)
    image.place(PrivOp.MOV_CR3, PAGE_SIZE + 0x80)
    return image
