"""Fleet orchestration: a multi-host Fidelius cloud.

A thin control plane over :class:`~repro.system.System` that does what a
tenant-facing cloud of Fidelius hosts would do:

* attest every host before placing anything on it (Section 4.3.1's
  remote-attestation use of the measurements);
* place tenants on the least-loaded attested host;
* migrate tenants between hosts over the SEND/RECEIVE transport;
* evacuate a host (e.g. for maintenance) by migrating everything off it.

Tenant identity survives migration: the :class:`Tenant` handle tracks
where its domain currently lives.

The control plane fails closed.  Hosts that fail attestation are
quarantined (no further placement or migration targets until an operator
lifts the quarantine); migrations retry across attested hosts with the
failed ones excluded, and a tenant whose operation cannot complete stays
where it was — :func:`~repro.core.migration.migrate_guest` guarantees
the source is intact and re-enterable after any target-side failure.
Every failure is recorded in :attr:`Cloud.events` for the operator.
"""

import bisect
from collections import deque
from dataclasses import dataclass, field

from repro.common import crypto
from repro.common.errors import ReproError
from repro.core.attestation import (
    AttestationAuthority,
    RemoteVerifier,
    golden_measurements,
)
from repro.core.migration import migrate_guest
from repro.system import System


@dataclass
class Tenant:
    """One tenant's running guest, wherever it currently lives."""

    name: str
    owner: object
    host_index: int
    domain: object = field(repr=False)
    ctx: object = field(repr=False)


class Cloud:
    """A fleet of identically built Fidelius hosts."""

    #: default ring-buffer capacity for :attr:`events`
    DEFAULT_EVENT_LOG_LIMIT = 4096

    def __init__(self, hosts=2, frames=4096, seed=0xC10D,
                 event_log_limit=DEFAULT_EVENT_LOG_LIMIT):
        if hosts < 1:
            raise ReproError("a cloud needs at least one host")
        self.hosts = [System.create(fidelius=True, frames=frames,
                                    seed=seed + i) for i in range(hosts)]
        self._authorities = [AttestationAuthority(h.machine)
                             for h in self.hosts]
        # All hosts run the same build: host 0's measurements are the
        # fleet's golden values (the distributor's reference).
        golden_fid, golden_xen = golden_measurements(self.hosts[0])
        self._verifiers = [
            RemoteVerifier(golden_fid, golden_xen,
                           authority.public_verifier())
            for authority in self._authorities
        ]
        self.tenants = {}
        #: Hosts failed closed: no placements or migration targets until
        #: an operator calls :meth:`lift_quarantine`.
        self.quarantined = set()
        #: Operator-visible record of failure and recovery steps — a
        #: ring buffer (long soaks otherwise grow it without bound).
        #: Only the newest ``event_log_limit`` events are retained;
        #: :attr:`events_recorded` keeps the lifetime total.
        self.events = deque(maxlen=event_log_limit)
        self.events_recorded = 0
        #: tenants-per-host, O(1) to read (placement used to recount
        #: every tenant per candidate host)
        self._loads = [0] * hosts
        #: sorted ``(load, host index)`` over non-quarantined hosts —
        #: the head is always the least-loaded admissible candidate, so
        #: placement is an index walk instead of a fleet scan, and the
        #: bisect updates on launch/migrate/shutdown are O(log n)
        self._load_index = [(0, i) for i in range(hosts)]
        #: host index -> (staleness probe, cached perf contribution)
        self._perf_cache = {}
        self._perf_totals = None

    def __len__(self):
        return len(self.hosts)

    def host(self, index):
        return self.hosts[index]

    def authority(self, index):
        """Host ``index``'s hardware quote engine."""
        return self._authorities[index]

    def _record(self, kind, **details):
        self.events_recorded += 1
        self.events.append((kind, details))

    def event_kinds(self):
        """Kinds of the retained (newest) events, oldest first."""
        return [kind for kind, _ in self.events]

    @property
    def events_dropped(self):
        """How many old events the ring buffer has already evicted."""
        return self.events_recorded - len(self.events)

    @staticmethod
    def _perf_probe(machine):
        """A five-integer staleness probe for one host's perf state.

        Sound because every memory-controller fast-path counter mutates
        only on cycle-charging paths, every TLB hit/miss/eviction is one
        of the probed counters, and the only zero-cycle TLB mutation
        with observable perf output (``new_incarnation``) changes the
        live-entry count.  A probe match therefore means the host's
        cached contribution is still exact.
        """
        tlb = machine.tlb
        return (machine.cycles.total, tlb.hits, tlb.misses,
                tlb.evictions, len(tlb))

    @staticmethod
    def _perf_contribution(stats):
        """One host's summable share of the fleet totals."""
        host_tlb = stats["tlb"]
        return {
            "memctrl": dict(stats["memctrl"]),
            "tlb": {
                "hits": host_tlb["hits"],
                "misses": host_tlb["misses"],
                "evictions": host_tlb["evictions"],
                "entries": host_tlb["entries"],
                "roots": host_tlb["roots"],
                "root_index_entries": sum(
                    host_tlb["root_index_sizes"].values()),
            },
        }

    def perf_stats(self):
        """Fleet-wide simulator fast-path counters, one call per cloud.

        Sums every host's :meth:`~repro.hw.machine.Machine.perf_stats`
        hierarchy counters — incrementally: each host's contribution is
        cached against a cheap staleness probe (:meth:`_perf_probe`),
        and only hosts whose probe moved are re-walked, their old
        contribution subtracted and the fresh one added to integer-exact
        running totals.  A quiescent fleet answers in O(hosts) probe
        reads instead of O(hosts) full counter walks; the result is
        defined to equal the full re-summation.

        The keystream cache is process-global (one cache serves every
        machine), so it is reported once rather than summed; the TLBs'
        per-root occupancy maps collapse into a total entry count (root
        PFNs are meaningless across hosts).
        """
        if self._perf_totals is None:
            self._perf_totals = {
                "memctrl": {},
                "tlb": {"hits": 0, "misses": 0, "evictions": 0,
                        "entries": 0, "roots": 0,
                        "root_index_entries": 0},
            }
        totals = self._perf_totals
        for index, host in enumerate(self.hosts):
            probe = self._perf_probe(host.machine)
            cached = self._perf_cache.get(index)
            if cached is not None and cached[0] == probe:
                continue
            fresh = self._perf_contribution(host.machine.perf_stats())
            if cached is not None:
                stale = cached[1]
                for key, value in stale["memctrl"].items():
                    totals["memctrl"][key] -= value
                for key, value in stale["tlb"].items():
                    totals["tlb"][key] -= value
            for key, value in fresh["memctrl"].items():
                totals["memctrl"][key] = \
                    totals["memctrl"].get(key, 0) + value
            for key, value in fresh["tlb"].items():
                totals["tlb"][key] += value
            self._perf_cache[index] = (probe, fresh)
        return {
            "hosts": len(self.hosts),
            "keystream_cache": crypto.keystream_cache_stats(),
            "memctrl": dict(totals["memctrl"]),
            "tlb": dict(totals["tlb"]),
            "events": {
                "recorded": self.events_recorded,
                "retained": len(self.events),
                "dropped": self.events_dropped,
            },
        }

    # -- attestation -------------------------------------------------------------

    def attest_host(self, index):
        """True if host ``index`` passes remote attestation right now.

        A host that fails is quarantined on the spot — fail closed: a
        single bad quote mid-operation removes the host from the
        placement pool until an operator investigates.
        """
        if index in self.quarantined:
            return False
        host = self.hosts[index]
        verifier = self._verifiers[index]
        nonce = verifier.fresh_nonce(host.machine.rng)
        quote = self._authorities[index].quote(host.fidelius, nonce)
        reason = verifier.explain(quote, nonce)
        if reason is None:
            return True
        self.quarantined.add(index)
        self._index_discard(index)
        self._record("host-quarantined", host=index, reason=reason)
        return False

    def lift_quarantine(self, index):
        """Operator override: re-admit a host if it attests cleanly now.

        Both outcomes land in the event log — an operator replaying the
        audit trail must see every lift *attempt*, not just the ones
        that stuck (``attest_host`` also records the re-quarantine, so
        a rejected lift shows up as the pair).
        """
        self.quarantined.discard(index)
        ok = self.attest_host(index)
        if ok:
            self._index_add(index)
            self._record("quarantine-lifted", host=index)
        else:
            self._record("quarantine-lift-rejected", host=index)
        return ok

    def attested_hosts(self):
        return [i for i in range(len(self.hosts)) if self.attest_host(i)]

    # -- placement ----------------------------------------------------------------

    def _load(self, index):
        return self._loads[index]

    def _index_add(self, index):
        entry = (self._loads[index], index)
        at = bisect.bisect_left(self._load_index, entry)
        if at < len(self._load_index) and self._load_index[at] == entry:
            return
        self._load_index.insert(at, entry)

    def _index_discard(self, index):
        entry = (self._loads[index], index)
        at = bisect.bisect_left(self._load_index, entry)
        if at < len(self._load_index) and self._load_index[at] == entry:
            del self._load_index[at]

    def _shift_load(self, index, delta):
        """Move one host's tenant count, re-keying its index entry (a
        quarantined host has no entry; only its count moves)."""
        quarantined = index in self.quarantined
        if not quarantined:
            self._index_discard(index)
        self._loads[index] += delta
        if not quarantined:
            self._index_add(index)

    def pick_host(self, exclude=()):
        """The least-loaded host that passes attestation.

        Walks the sorted load index from the head, so the first
        non-excluded host that attests cleanly *is* the answer (ties
        break to the lowest host index, as the old full scan's ``min``
        did).  Hosts are attested lazily in candidate order; one that
        fails is quarantined on the spot — which removes its entry, so
        the same position holds the next candidate.
        """
        at = 0
        while at < len(self._load_index):
            load, index = self._load_index[at]
            if index in exclude:
                at += 1
                continue
            if self.attest_host(index):
                return index
            if (at < len(self._load_index)
                    and self._load_index[at] == (load, index)):
                at += 1      # entry survived the failed attestation
        raise ReproError("no host in the fleet passes attestation")

    def launch_tenant(self, name, owner, payload=b"", guest_frames=48,
                      host_index=None):
        """Attest, place, and boot a tenant from its encrypted image."""
        if name in self.tenants:
            raise ReproError("tenant %r already exists" % name)
        index = self.pick_host() if host_index is None else host_index
        if host_index is not None and not self.attest_host(host_index):
            raise ReproError("host %d fails attestation" % host_index)
        host = self.hosts[index]
        domain, ctx = host.boot_protected_guest(
            name, owner, payload=payload, guest_frames=guest_frames)
        tenant = Tenant(name, owner, index, domain, ctx)
        self.tenants[name] = tenant
        self._shift_load(index, +1)
        return tenant

    # -- mobility -------------------------------------------------------------------

    def _migrate_once(self, tenant, to_host_index):
        """One migration attempt; updates the tenant only on success.

        On failure the two-phase ``migrate_guest`` has already restored
        the source, so the tenant handle stays valid where it is; the
        failed target is re-attested (quarantining it if its quotes have
        gone bad mid-operation) and the error propagates to the retry
        loop or the caller.
        """
        source = self.hosts[tenant.host_index]
        target = self.hosts[to_host_index]
        try:
            domain, ctx = migrate_guest(source.fidelius, tenant.domain,
                                        target.fidelius)
        except ReproError as exc:
            self._record("migrate-failed", tenant=tenant.name,
                         source=tenant.host_index, target=to_host_index,
                         reason=str(exc))
            self.attest_host(to_host_index)
            raise
        self._shift_load(tenant.host_index, -1)
        self._shift_load(to_host_index, +1)
        tenant.host_index = to_host_index
        tenant.domain = domain
        tenant.ctx = ctx
        return tenant

    def migrate_tenant(self, name, to_host_index=None, retries=2):
        """Move a tenant; its handle keeps working afterwards.

        With an explicit destination this is a single fail-closed
        attempt.  With ``to_host_index=None`` the destination is chosen
        from the attested pool and retried up to ``retries`` further
        times, excluding hosts that already failed; if every candidate
        fails, the error propagates with the tenant still running on its
        original host.
        """
        tenant = self.tenants[name]
        if to_host_index is not None:
            if to_host_index == tenant.host_index:
                return tenant
            if not self.attest_host(to_host_index):
                raise ReproError("refusing to migrate onto an "
                                 "unattested host")
            return self._migrate_once(tenant, to_host_index)

        excluded = {tenant.host_index}
        last_error = None
        for _ in range(1 + retries):
            try:
                destination = self.pick_host(exclude=excluded)
            except ReproError:
                break
            try:
                return self._migrate_once(tenant, destination)
            except ReproError as exc:
                excluded.add(destination)
                last_error = exc
        raise last_error if last_error is not None else ReproError(
            "no attested destination for tenant %r" % name)

    def evacuate(self, host_index, retries=2):
        """Migrate every tenant off one host (maintenance drain).

        Each tenant is retried across the remaining attested hosts with
        failed destinations excluded.  If a tenant exhausts every
        candidate the drain stops with that tenant (and any not yet
        attempted) still intact on the source — never half-moved.
        """
        moved = []
        for tenant in list(self.tenants.values()):
            if tenant.host_index != host_index:
                continue
            excluded = {host_index}
            last_error = None
            for _ in range(1 + retries):
                try:
                    destination = self.pick_host(exclude=excluded)
                except ReproError:
                    break
                try:
                    self._migrate_once(tenant, destination)
                    moved.append(tenant.name)
                    last_error = None
                    break
                except ReproError as exc:
                    excluded.add(destination)
                    last_error = exc
            else:
                last_error = last_error or ReproError(
                    "evacuation retries exhausted")
            if tenant.host_index == host_index:
                self._record("evacuation-stalled", tenant=tenant.name,
                             host=host_index)
                raise last_error if last_error is not None else ReproError(
                    "nowhere to evacuate to")
        return moved

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown_tenant(self, name):
        """Tear a tenant down; it is forgotten only once destroy succeeds."""
        tenant = self.tenants[name]
        host = self.hosts[tenant.host_index]
        host.hypervisor.destroy_domain(tenant.domain)
        del self.tenants[name]
        self._shift_load(tenant.host_index, -1)

    def inventory(self):
        """{host_index: [tenant names]} for every host."""
        out = {i: [] for i in range(len(self.hosts))}
        for tenant in self.tenants.values():
            out[tenant.host_index].append(tenant.name)
        return {i: sorted(names) for i, names in out.items()}
