"""Fleet orchestration: a multi-host Fidelius cloud.

A thin control plane over :class:`~repro.system.System` that does what a
tenant-facing cloud of Fidelius hosts would do:

* attest every host before placing anything on it (Section 4.3.1's
  remote-attestation use of the measurements);
* place tenants on the least-loaded attested host;
* migrate tenants between hosts over the SEND/RECEIVE transport;
* evacuate a host (e.g. for maintenance) by migrating everything off it.

Tenant identity survives migration: the :class:`Tenant` handle tracks
where its domain currently lives.

The control plane fails closed.  Hosts that fail attestation are
quarantined (no further placement or migration targets until an operator
lifts the quarantine); migrations retry across attested hosts with the
failed ones excluded, and a tenant whose operation cannot complete stays
where it was — :func:`~repro.core.migration.migrate_guest` guarantees
the source is intact and re-enterable after any target-side failure.
Every failure is recorded in :attr:`Cloud.events` for the operator.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.common import crypto
from repro.common.errors import ReproError
from repro.core.attestation import (
    AttestationAuthority,
    RemoteVerifier,
    golden_measurements,
)
from repro.core.migration import migrate_guest
from repro.system import System


@dataclass
class Tenant:
    """One tenant's running guest, wherever it currently lives."""

    name: str
    owner: object
    host_index: int
    domain: object = field(repr=False)
    ctx: object = field(repr=False)


class Cloud:
    """A fleet of identically built Fidelius hosts."""

    #: default ring-buffer capacity for :attr:`events`
    DEFAULT_EVENT_LOG_LIMIT = 4096

    def __init__(self, hosts=2, frames=4096, seed=0xC10D,
                 event_log_limit=DEFAULT_EVENT_LOG_LIMIT):
        if hosts < 1:
            raise ReproError("a cloud needs at least one host")
        self.hosts = [System.create(fidelius=True, frames=frames,
                                    seed=seed + i) for i in range(hosts)]
        self._authorities = [AttestationAuthority(h.machine)
                             for h in self.hosts]
        # All hosts run the same build: host 0's measurements are the
        # fleet's golden values (the distributor's reference).
        golden_fid, golden_xen = golden_measurements(self.hosts[0])
        self._verifiers = [
            RemoteVerifier(golden_fid, golden_xen,
                           authority.public_verifier())
            for authority in self._authorities
        ]
        self.tenants = {}
        #: Hosts failed closed: no placements or migration targets until
        #: an operator calls :meth:`lift_quarantine`.
        self.quarantined = set()
        #: Operator-visible record of failure and recovery steps — a
        #: ring buffer (long soaks otherwise grow it without bound).
        #: Only the newest ``event_log_limit`` events are retained;
        #: :attr:`events_recorded` keeps the lifetime total.
        self.events = deque(maxlen=event_log_limit)
        self.events_recorded = 0

    def __len__(self):
        return len(self.hosts)

    def host(self, index):
        return self.hosts[index]

    def authority(self, index):
        """Host ``index``'s hardware quote engine."""
        return self._authorities[index]

    def _record(self, kind, **details):
        self.events_recorded += 1
        self.events.append((kind, details))

    def event_kinds(self):
        """Kinds of the retained (newest) events, oldest first."""
        return [kind for kind, _ in self.events]

    @property
    def events_dropped(self):
        """How many old events the ring buffer has already evicted."""
        return self.events_recorded - len(self.events)

    def perf_stats(self):
        """Fleet-wide simulator fast-path counters, one call per cloud.

        Sums every host's :meth:`~repro.hw.machine.Machine.perf_stats`
        hierarchy counters.  The keystream cache is process-global (one
        cache serves every machine), so it is reported once rather than
        summed; the TLBs' per-root occupancy maps collapse into a total
        entry count (root PFNs are meaningless across hosts).
        """
        per_host = [host.machine.perf_stats() for host in self.hosts]
        memctrl = {}
        for stats in per_host:
            for key, value in stats["memctrl"].items():
                memctrl[key] = memctrl.get(key, 0) + value
        tlb = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
               "roots": 0, "root_index_entries": 0}
        for stats in per_host:
            host_tlb = stats["tlb"]
            for key in ("hits", "misses", "evictions", "entries", "roots"):
                tlb[key] += host_tlb[key]
            tlb["root_index_entries"] += sum(
                host_tlb["root_index_sizes"].values())
        return {
            "hosts": len(self.hosts),
            "keystream_cache": crypto.keystream_cache_stats(),
            "memctrl": memctrl,
            "tlb": tlb,
            "events": {
                "recorded": self.events_recorded,
                "retained": len(self.events),
                "dropped": self.events_dropped,
            },
        }

    # -- attestation -------------------------------------------------------------

    def attest_host(self, index):
        """True if host ``index`` passes remote attestation right now.

        A host that fails is quarantined on the spot — fail closed: a
        single bad quote mid-operation removes the host from the
        placement pool until an operator investigates.
        """
        if index in self.quarantined:
            return False
        host = self.hosts[index]
        verifier = self._verifiers[index]
        nonce = verifier.fresh_nonce(host.machine.rng)
        quote = self._authorities[index].quote(host.fidelius, nonce)
        reason = verifier.explain(quote, nonce)
        if reason is None:
            return True
        self.quarantined.add(index)
        self._record("host-quarantined", host=index, reason=reason)
        return False

    def lift_quarantine(self, index):
        """Operator override: re-admit a host if it attests cleanly now.

        Both outcomes land in the event log — an operator replaying the
        audit trail must see every lift *attempt*, not just the ones
        that stuck (``attest_host`` also records the re-quarantine, so
        a rejected lift shows up as the pair).
        """
        self.quarantined.discard(index)
        ok = self.attest_host(index)
        if ok:
            self._record("quarantine-lifted", host=index)
        else:
            self._record("quarantine-lift-rejected", host=index)
        return ok

    def attested_hosts(self):
        return [i for i in range(len(self.hosts)) if self.attest_host(i)]

    # -- placement ----------------------------------------------------------------

    def _load(self, index):
        return len([t for t in self.tenants.values()
                    if t.host_index == index])

    def pick_host(self, exclude=()):
        """The least-loaded host that passes attestation."""
        candidates = [i for i in self.attested_hosts() if i not in exclude]
        if not candidates:
            raise ReproError("no host in the fleet passes attestation")
        return min(candidates, key=self._load)

    def launch_tenant(self, name, owner, payload=b"", guest_frames=48,
                      host_index=None):
        """Attest, place, and boot a tenant from its encrypted image."""
        if name in self.tenants:
            raise ReproError("tenant %r already exists" % name)
        index = self.pick_host() if host_index is None else host_index
        if host_index is not None and not self.attest_host(host_index):
            raise ReproError("host %d fails attestation" % host_index)
        host = self.hosts[index]
        domain, ctx = host.boot_protected_guest(
            name, owner, payload=payload, guest_frames=guest_frames)
        tenant = Tenant(name, owner, index, domain, ctx)
        self.tenants[name] = tenant
        return tenant

    # -- mobility -------------------------------------------------------------------

    def _migrate_once(self, tenant, to_host_index):
        """One migration attempt; updates the tenant only on success.

        On failure the two-phase ``migrate_guest`` has already restored
        the source, so the tenant handle stays valid where it is; the
        failed target is re-attested (quarantining it if its quotes have
        gone bad mid-operation) and the error propagates to the retry
        loop or the caller.
        """
        source = self.hosts[tenant.host_index]
        target = self.hosts[to_host_index]
        try:
            domain, ctx = migrate_guest(source.fidelius, tenant.domain,
                                        target.fidelius)
        except ReproError as exc:
            self._record("migrate-failed", tenant=tenant.name,
                         source=tenant.host_index, target=to_host_index,
                         reason=str(exc))
            self.attest_host(to_host_index)
            raise
        tenant.host_index = to_host_index
        tenant.domain = domain
        tenant.ctx = ctx
        return tenant

    def migrate_tenant(self, name, to_host_index=None, retries=2):
        """Move a tenant; its handle keeps working afterwards.

        With an explicit destination this is a single fail-closed
        attempt.  With ``to_host_index=None`` the destination is chosen
        from the attested pool and retried up to ``retries`` further
        times, excluding hosts that already failed; if every candidate
        fails, the error propagates with the tenant still running on its
        original host.
        """
        tenant = self.tenants[name]
        if to_host_index is not None:
            if to_host_index == tenant.host_index:
                return tenant
            if not self.attest_host(to_host_index):
                raise ReproError("refusing to migrate onto an "
                                 "unattested host")
            return self._migrate_once(tenant, to_host_index)

        excluded = {tenant.host_index}
        last_error = None
        for _ in range(1 + retries):
            try:
                destination = self.pick_host(exclude=excluded)
            except ReproError:
                break
            try:
                return self._migrate_once(tenant, destination)
            except ReproError as exc:
                excluded.add(destination)
                last_error = exc
        raise last_error if last_error is not None else ReproError(
            "no attested destination for tenant %r" % name)

    def evacuate(self, host_index, retries=2):
        """Migrate every tenant off one host (maintenance drain).

        Each tenant is retried across the remaining attested hosts with
        failed destinations excluded.  If a tenant exhausts every
        candidate the drain stops with that tenant (and any not yet
        attempted) still intact on the source — never half-moved.
        """
        moved = []
        for tenant in list(self.tenants.values()):
            if tenant.host_index != host_index:
                continue
            excluded = {host_index}
            last_error = None
            for _ in range(1 + retries):
                candidates = [i for i in self.attested_hosts()
                              if i not in excluded]
                if not candidates:
                    break
                destination = min(candidates, key=self._load)
                try:
                    self._migrate_once(tenant, destination)
                    moved.append(tenant.name)
                    last_error = None
                    break
                except ReproError as exc:
                    excluded.add(destination)
                    last_error = exc
            else:
                last_error = last_error or ReproError(
                    "evacuation retries exhausted")
            if tenant.host_index == host_index:
                self._record("evacuation-stalled", tenant=tenant.name,
                             host=host_index)
                raise last_error if last_error is not None else ReproError(
                    "nowhere to evacuate to")
        return moved

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown_tenant(self, name):
        """Tear a tenant down; it is forgotten only once destroy succeeds."""
        tenant = self.tenants[name]
        host = self.hosts[tenant.host_index]
        host.hypervisor.destroy_domain(tenant.domain)
        del self.tenants[name]

    def inventory(self):
        """{host_index: [tenant names]} for every host."""
        out = {i: [] for i in range(len(self.hosts))}
        for tenant in self.tenants.values():
            out[tenant.host_index].append(tenant.name)
        return {i: sorted(names) for i, names in out.items()}
