"""Fleet orchestration: a multi-host Fidelius cloud.

A thin control plane over :class:`~repro.system.System` that does what a
tenant-facing cloud of Fidelius hosts would do:

* attest every host before placing anything on it (Section 4.3.1's
  remote-attestation use of the measurements);
* place tenants on the least-loaded attested host;
* migrate tenants between hosts over the SEND/RECEIVE transport;
* evacuate a host (e.g. for maintenance) by migrating everything off it.

Tenant identity survives migration: the :class:`Tenant` handle tracks
where its domain currently lives.
"""

from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.core.attestation import (
    AttestationAuthority,
    RemoteVerifier,
    golden_measurements,
)
from repro.core.migration import migrate_guest
from repro.system import System


@dataclass
class Tenant:
    """One tenant's running guest, wherever it currently lives."""

    name: str
    owner: object
    host_index: int
    domain: object = field(repr=False)
    ctx: object = field(repr=False)


class Cloud:
    """A fleet of identically built Fidelius hosts."""

    def __init__(self, hosts=2, frames=4096, seed=0xC10D):
        if hosts < 1:
            raise ReproError("a cloud needs at least one host")
        self.hosts = [System.create(fidelius=True, frames=frames,
                                    seed=seed + i) for i in range(hosts)]
        self._authorities = [AttestationAuthority(h.machine)
                             for h in self.hosts]
        # All hosts run the same build: host 0's measurements are the
        # fleet's golden values (the distributor's reference).
        golden_fid, golden_xen = golden_measurements(self.hosts[0])
        self._verifiers = [
            RemoteVerifier(golden_fid, golden_xen,
                           authority.public_verifier())
            for authority in self._authorities
        ]
        self.tenants = {}

    def __len__(self):
        return len(self.hosts)

    def host(self, index):
        return self.hosts[index]

    # -- attestation -------------------------------------------------------------

    def attest_host(self, index):
        """True if host ``index`` passes remote attestation right now."""
        host = self.hosts[index]
        verifier = self._verifiers[index]
        nonce = verifier.fresh_nonce(host.machine.rng)
        quote = self._authorities[index].quote(host.fidelius, nonce)
        try:
            return verifier.check(quote, nonce)
        except ReproError:
            return False

    def attested_hosts(self):
        return [i for i in range(len(self.hosts)) if self.attest_host(i)]

    # -- placement ----------------------------------------------------------------

    def _load(self, index):
        return len([t for t in self.tenants.values()
                    if t.host_index == index])

    def pick_host(self):
        """The least-loaded host that passes attestation."""
        candidates = self.attested_hosts()
        if not candidates:
            raise ReproError("no host in the fleet passes attestation")
        return min(candidates, key=self._load)

    def launch_tenant(self, name, owner, payload=b"", guest_frames=48,
                      host_index=None):
        """Attest, place, and boot a tenant from its encrypted image."""
        if name in self.tenants:
            raise ReproError("tenant %r already exists" % name)
        index = self.pick_host() if host_index is None else host_index
        if host_index is not None and not self.attest_host(host_index):
            raise ReproError("host %d fails attestation" % host_index)
        host = self.hosts[index]
        domain, ctx = host.boot_protected_guest(
            name, owner, payload=payload, guest_frames=guest_frames)
        tenant = Tenant(name, owner, index, domain, ctx)
        self.tenants[name] = tenant
        return tenant

    # -- mobility -------------------------------------------------------------------

    def migrate_tenant(self, name, to_host_index):
        """Move a tenant; its handle keeps working afterwards."""
        tenant = self.tenants[name]
        if to_host_index == tenant.host_index:
            return tenant
        if not self.attest_host(to_host_index):
            raise ReproError("refusing to migrate onto an unattested host")
        source = self.hosts[tenant.host_index]
        target = self.hosts[to_host_index]
        domain, ctx = migrate_guest(source.fidelius, tenant.domain,
                                    target.fidelius)
        tenant.host_index = to_host_index
        tenant.domain = domain
        tenant.ctx = ctx
        return tenant

    def evacuate(self, host_index):
        """Migrate every tenant off one host (maintenance drain)."""
        others = [i for i in self.attested_hosts() if i != host_index]
        if not others:
            raise ReproError("nowhere to evacuate to")
        moved = []
        for tenant in list(self.tenants.values()):
            if tenant.host_index != host_index:
                continue
            destination = min(others, key=self._load)
            self.migrate_tenant(tenant.name, destination)
            moved.append(tenant.name)
        return moved

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown_tenant(self, name):
        tenant = self.tenants.pop(name)
        host = self.hosts[tenant.host_index]
        host.hypervisor.destroy_domain(tenant.domain)

    def inventory(self):
        """{host_index: [tenant names]} for every host."""
        out = {i: [] for i in range(len(self.hosts))}
        for tenant in self.tenants.values():
            out[tenant.host_index].append(tenant.name)
        return {i: sorted(names) for i, names in out.items()}
