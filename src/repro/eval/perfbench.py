"""Wall-clock benchmarks for the simulator's fast data path.

Everything else under ``repro.eval`` measures the *modelled* machine in
cycles; this module measures the *simulator itself* in seconds.  The
PR-4 data-path rework (keystream midstates and line cache, wide-XOR
line crypto, span-batched multi-line transfers, the LRU TLB with its
per-root flush index) is constrained to leave cycle ledgers and
functional outputs bit-identical — so the only observable it is allowed
to move is wall-clock, and this is the instrument that watches it.

Four benchmarks, each warmup + repeat + median:

* ``keystream``   — ``crypto.keystream`` against the kept-verbatim
  ``crypto._reference_keystream`` oracle;
* ``enc_rw_mix``  — a randomized encrypted read/write mix driven
  through :class:`MemoryController` and its kept-simple twin
  :class:`ReferenceMemoryController`, equal cycles and DRAM asserted;
* ``walker_tlb``  — page-table-walk + TLB churn across several roots
  with periodic ``flush_root`` storms (throughput + TLB counters);
* ``guest_macro`` — a :class:`CryptoWorker` guest workload on two
  booted systems, optimized vs ``reference_datapath=True``, equal
  digests and cycle deltas asserted.

``python -m repro.eval.perfbench --json`` writes ``BENCH_simulator.json``
(schema ``fidelius-perfbench/3``) with per-benchmark timings/speedups,
the optimized machine's :meth:`Machine.perf_stats` counters, and a
``sharding`` section (host CPU count, ``--jobs`` used, executor mode,
spawn vs transport vs compute breakdown, per-shard wall-clock and
utilization from :mod:`repro.runner`), so ``BENCH_*`` trajectories
stay comparable across machines.  With ``--jobs N`` the four
benchmarks run across worker processes — the persistent pool by
default, one fresh process per shard with ``--fresh-workers`` — and
every deterministic field (cycle totals, digests, equivalence flags)
is byte-identical to the serial run; :func:`deterministic_digest` is
the comparison key.  ``--only NAME`` restricts the run to named
benchmarks (the CI perf-regression gate uses it to re-time
``guest_macro`` at full size without paying for the whole suite).

Schema /3 changes vs /2: ``guest_macro`` drives the span-batched
:class:`CryptoWorker` on both data paths (two ``GuestContext.batch``
calls per round instead of two Python calls per page), per-bench
``keystream_cache`` sections are delta snapshots captured around each
bench's own run (the /2 ``enc_rw_mix`` section read a cache the
reference runs had already cleared, reporting zeros), and the
``sharding`` section gained the executor-mode/spawn/transport/compute
breakdown.
"""

import argparse
import json
import os
import random
import statistics
import sys
# fidelint: ignore[FID007] -- this module's entire purpose is measuring
# host wall-clock (simulator implementation speed, never modelled time);
# every modelled quantity still comes from the cycle counter.
import time

from repro.common import crypto
from repro.runner import WorkUnit, add_jobs_argument, execute
from repro.runner import merge as runner_merge
from repro.common.constants import (
    PAGE_SIZE,
    PTE_NX,
    PTE_PRESENT,
    PTE_WRITABLE,
    TLB_MISS_WALK_CYCLES,
)
from repro.hw.cycles import CycleCounter
from repro.hw.memctrl import MemoryController, ReferenceMemoryController
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.pagetable import PageTableWalker
from repro.hw.tlb import Tlb
from repro.system import System
from repro.workloads.guestprogs import CryptoWorker

SCHEMA = "fidelius-perfbench/3"
DEFAULT_OUTPUT = "BENCH_simulator.json"

#: benchmark sizing; ``quick`` is the CI smoke profile
FULL = {
    "repeats": 5,
    "keystream_calls": 30000,
    "keystream_keys": 4,
    "keystream_tweaks": 128,
    "mix_ops": 12000,
    "mix_pages": 64,
    "mix_cache_lines": 64,
    "tlb_translations": 60000,
    "tlb_roots": 6,
    "tlb_pages_per_root": 192,
    "tlb_flush_every": 2000,
    "macro_rounds": 6,
    "macro_pages": 96,
}
QUICK = {
    "repeats": 3,
    "keystream_calls": 2000,
    "keystream_keys": 2,
    "keystream_tweaks": 16,
    "mix_ops": 800,
    "mix_pages": 16,
    "mix_cache_lines": 16,
    "tlb_translations": 3000,
    "tlb_roots": 3,
    "tlb_pages_per_root": 32,
    "tlb_flush_every": 400,
    "macro_rounds": 2,
    "macro_pages": 24,
}

_MIX_SIZES = (8, 32, 64, 256, 1024, 4096)
_MIX_WEIGHTS = (25, 20, 20, 20, 10, 5)


def _median(run, repeats):
    """Median of ``repeats`` timed runs after one untimed warmup.

    ``run`` does its own setup and returns elapsed seconds, so cold
    state (fresh controllers, cleared keystream caches) is part of
    every sample — the numbers include miss costs, not just the steady
    state.
    """
    run()
    return statistics.median(run() for _ in range(repeats))


# -- keystream ---------------------------------------------------------------

def _keystream_trace(params, seed=0x4B5):
    rng = random.Random(seed)
    keys = [bytes(rng.getrandbits(8) for _ in range(16))
            for _ in range(params["keystream_keys"])]
    line_pas = [rng.randrange(0, params["keystream_tweaks"]) << 6
                for _ in range(params["keystream_tweaks"])]
    calls = []
    for _ in range(params["keystream_calls"]):
        length, offset = rng.choice(((64, 0), (32, 0), (16, 32), (8, 8)))
        data = bytes(rng.getrandbits(8) for _ in range(length))
        calls.append((rng.choice(keys), rng.choice(line_pas), data, offset))
    return calls


def keystream_bench(params):
    """Per-line keystream + XOR — the unit of work under every
    encrypted access — on the cached wide-integer fast path vs the
    kept-verbatim byte-at-a-time reference."""
    calls = _keystream_trace(params)

    def run_optimized():
        crypto.clear_keystream_cache()
        t0 = time.perf_counter()
        for key, line_pa, data, offset in calls:
            crypto.xex_line_encrypt(key, line_pa, data, offset)
        return time.perf_counter() - t0

    def run_reference():
        t0 = time.perf_counter()
        for key, line_pa, data, offset in calls:
            crypto._reference_xex_encrypt(
                key, line_pa.to_bytes(8, "little"), data, offset)
        return time.perf_counter() - t0

    optimized = _median(run_optimized, params["repeats"])
    reference = _median(run_reference, params["repeats"])
    for key, line_pa, data, offset in calls[:64]:
        assert crypto.xex_line_encrypt(key, line_pa, data, offset) == \
            crypto._reference_xex_encrypt(
                key, line_pa.to_bytes(8, "little"), data, offset)
    return {
        "calls": len(calls),
        "optimized_s": optimized,
        "reference_s": reference,
        "speedup": reference / optimized,
    }


# -- encrypted read/write mix ------------------------------------------------

def _mix_trace(params, seed=0x11F):
    rng = random.Random(seed)
    span = params["mix_pages"] * PAGE_SIZE
    ops = []
    for _ in range(params["mix_ops"]):
        size = rng.choices(_MIX_SIZES, _MIX_WEIGHTS)[0]
        pa = rng.randrange(0, span - size)
        if rng.random() < 0.5:
            ops.append(("r", pa, size))
        else:
            ops.append(("w", pa, bytes(rng.getrandbits(8)
                                       for _ in range(size))))
    return ops


def _run_mix(controller_cls, params, ops):
    crypto.clear_keystream_cache()
    memory = PhysicalMemory(params["mix_pages"] + 1)
    ctl = controller_cls(memory, CycleCounter(),
                         cache_lines=params["mix_cache_lines"])
    ctl.install_key(1, b"perfbench-key-01")
    before = crypto.keystream_cache_stats()
    t0 = time.perf_counter()
    for op in ops:
        if op[0] == "r":
            ctl.read(op[1], op[2], c_bit=True, asid=1)
        else:
            ctl.write(op[1], op[2], c_bit=True, asid=1)
    elapsed = time.perf_counter() - t0
    return elapsed, ctl, crypto.keystream_cache_delta(before)


def enc_rw_mix_bench(params):
    """The headline micro: a weighted encrypted read/write mix under
    plaintext-cache pressure, optimized vs reference controller, with
    cycle-ledger and DRAM equality asserted in the same run."""
    ops = _mix_trace(params)
    fast_holder = {}
    ref_holder = {}

    def run_fast():
        elapsed, ctl, keystream = _run_mix(MemoryController, params, ops)
        fast_holder["ctl"] = ctl
        # delta snapshot around *this* run: later runs (and the
        # reference arm) clear the global cache, so reading the stats
        # at report time would see someone else's state
        fast_holder["keystream"] = keystream
        return elapsed

    def run_ref():
        elapsed, ctl, _keystream = _run_mix(ReferenceMemoryController,
                                            params, ops)
        ref_holder["ctl"] = ctl
        return elapsed

    optimized = _median(run_fast, params["repeats"])
    reference = _median(run_ref, params["repeats"])
    fast, ref = fast_holder["ctl"], ref_holder["ctl"]
    equivalent = (
        fast.cycles.total == ref.cycles.total
        and fast.cycles.by_reason == ref.cycles.by_reason
        and fast.cycles.events == ref.cycles.events
        # fidelint: ignore[FID001] -- equivalence oracle: compares the
        # two controllers' raw DRAM byte-for-byte, reads nothing into
        # the modelled world
        and fast.memory.dump() == ref.memory.dump()
    )
    assert equivalent, "fast path diverged from the reference controller"
    return {
        "ops": len(ops),
        "optimized_s": optimized,
        "reference_s": reference,
        "speedup": reference / optimized,
        "equivalent": equivalent,
        "cycles_total": fast.cycles.total,
        "memctrl": fast.perf_counters(),
        "keystream_cache": fast_holder["keystream"],
    }


# -- walker + TLB churn ------------------------------------------------------

def walker_tlb_bench(params, seed=0x71B):
    """Translation churn across several address spaces with periodic
    ``flush_root`` storms — the workload the per-root TLB index and the
    slot-path walker loop were built for."""
    rng = random.Random(seed)
    roots_n = params["tlb_roots"]
    pages = params["tlb_pages_per_root"]
    frames = roots_n * (pages + 8) + 64
    memory = PhysicalMemory(frames)
    alloc = FrameAllocator(frames, reserved=1)
    walker = PageTableWalker(memory, alloc_frame=alloc.alloc)
    roots = []
    for _ in range(roots_n):
        root = alloc.alloc()
        # fidelint: ignore[FID001] -- construction-time zeroing of a
        # fresh page-table root on a bare bench machine (same idiom as
        # repro.xen.npt)
        memory.zero_frame(root)
        for i in range(pages):
            walker.map(root, i << 12, alloc.alloc(),
                       PTE_WRITABLE | PTE_NX | PTE_PRESENT)
        roots.append(root)
    vas = [i << 12 for i in range(pages)]

    def churn():
        cycles = CycleCounter()
        tlb = Tlb(cycles, capacity=256)
        t0 = time.perf_counter()
        for i in range(params["tlb_translations"]):
            root = roots[i % roots_n]
            va = vas[rng.randrange(pages)]
            vpn = va >> 12
            if tlb.lookup(root, vpn) is None:
                cycles.charge(TLB_MISS_WALK_CYCLES, "pt-walk")
                tlb.insert(root, vpn, walker.permissions(root, va))
            if i % params["tlb_flush_every"] == params["tlb_flush_every"] - 1:
                tlb.flush_root(roots[rng.randrange(roots_n)])
        elapsed = time.perf_counter() - t0
        churn.tlb = tlb
        return elapsed

    median = _median(churn, params["repeats"])
    tlb = churn.tlb
    return {
        "translations": params["tlb_translations"],
        "median_s": median,
        "per_translation_us": 1e6 * median / params["tlb_translations"],
        "tlb": {
            "hits": tlb.hits,
            "misses": tlb.misses,
            "evictions": tlb.evictions,
            "entries": len(tlb),
            "roots_indexed": len(tlb.root_index_sizes()),
        },
    }


# -- guest-workload macro ----------------------------------------------------

def _macro_system(params, reference, batched=True):
    system = System.create(fidelius=False, frames=1024, seed=0xBE7C,
                           reference_datapath=reference,
                           cache_lines=params["mix_cache_lines"])
    _domain, ctx = system.create_baseline_sev_guest(
        "perfbench", guest_frames=params["macro_pages"] + 32)
    worker = CryptoWorker(ctx, first_gfn=8, pages=params["macro_pages"],
                          encrypted=True, batched=batched)
    return system, worker


def guest_macro_bench(params):
    """One real guest workload (CryptoWorker hashing an encrypted
    working set) on two identically seeded systems: optimized data path
    vs ``reference_datapath=True``.  Both arms run the *span-batched*
    worker (two ``GuestContext.batch`` calls per round), so the
    comparison isolates the data-path implementation under the same
    access order.  The digests and the cycle deltas must match exactly;
    only the wall-clock may differ."""
    rounds = params["macro_rounds"]
    results = {}

    def run_on(reference, tag):
        crypto.clear_keystream_cache()
        system, worker = _macro_system(params, reference)
        worker.run(1)                      # warmup round, untimed
        snap = system.machine.cycles.snapshot()
        before = crypto.keystream_cache_stats()
        t0 = time.perf_counter()
        digest = worker.run(rounds)
        elapsed = time.perf_counter() - t0
        results[tag] = {
            "digest": digest,
            "cycles": system.machine.cycles.since(snap),
            # delta around the timed rounds: the other data path's
            # runs clear the global cache, so a report-time read
            # would see zeros (the /2 enc_rw_mix bug)
            "keystream": crypto.keystream_cache_delta(before),
            "perf_stats": system.machine.perf_stats(),
        }
        return elapsed

    optimized = _median(lambda: run_on(False, "fast"), params["repeats"])
    reference = _median(lambda: run_on(True, "ref"), params["repeats"])
    fast, ref = results["fast"], results["ref"]
    assert fast["digest"] == ref["digest"], \
        "guest workload output diverged between data paths"
    assert fast["cycles"] == ref["cycles"], \
        "guest workload cycle cost diverged between data paths"
    return {
        "rounds": rounds,
        "working_set_pages": params["macro_pages"],
        "batched": True,
        "optimized_s": optimized,
        "reference_s": reference,
        "speedup": reference / optimized,
        "digest_equal": True,
        "cycles_equal": True,
        "workload_cycles": fast["cycles"],
        "keystream_cache": fast["keystream"],
        "perf_stats": fast["perf_stats"],
    }


# -- driver ------------------------------------------------------------------

#: The shardable benchmark set, in presentation order.
BENCH_FNS = {
    "keystream": keystream_bench,
    "enc_rw_mix": enc_rw_mix_bench,
    "walker_tlb": walker_tlb_bench,
    "guest_macro": guest_macro_bench,
}


def _run_bench(name, params):
    """Module-level dispatch so benchmark shards survive pickling."""
    return BENCH_FNS[name](params)


def run_all(quick=False, jobs=1, reuse_workers=True, only=None):
    """Run the suite (or the subset named by ``only``) and assemble
    the report.  ``reuse_workers`` selects the persistent pool for
    sharded runs; ``only`` is an iterable of benchmark names."""
    params = QUICK if quick else FULL
    names = list(BENCH_FNS) if only is None \
        else [n for n in BENCH_FNS if n in set(only)]
    unknown = set(only or ()) - set(BENCH_FNS)
    if unknown:
        raise ValueError("unknown benchmarks: %s" % ", ".join(
            sorted(unknown)))
    units = [WorkUnit.of(name, _run_bench, name, params)
             for name in names]
    report = execute(units, jobs=jobs, reuse_workers=reuse_workers)
    benchmarks = dict(zip(names, report.values()))
    counters = benchmarks["guest_macro"].pop("perf_stats") \
        if "guest_macro" in benchmarks else {}
    pool = report.sharding
    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": params["repeats"],
        "benchmarks": benchmarks,
        "counters": counters,
        "sharding": {
            "jobs": report.jobs,
            "host_cpus": os.cpu_count() or 1,
            "wall_s": report.wall_s,
            "busy_s": report.busy_s,
            "utilization": report.utilization(),
            "mode": pool["mode"],
            "workers_spawned": pool["workers_spawned"],
            "spawn_s": pool["spawn_s"],
            "transport_s": pool["transport_s"],
            "compute_s": pool["compute_s"],
            "dispatch_bytes": pool["dispatch_bytes"],
            "result_bytes": pool["result_bytes"],
            "shards": report.shard_counters(),
            "worker_shards": pool["shards"],
        },
    }


def deterministic_digest(report):
    """Digest of the report minus wall-clock fields — equal across
    ``--jobs`` settings and machines iff the modelled results are."""
    return runner_merge.deterministic_digest(report)


def format_report(report):
    lines = ["Simulator fast-path benchmarks (%s, median of %d)" % (
        "quick" if report["quick"] else "full", report["repeats"])]
    for name, bench in report["benchmarks"].items():
        if "speedup" in bench:
            lines.append(
                "  %-12s %8.3fs vs %8.3fs reference  -> %5.2fx" % (
                    name, bench["optimized_s"], bench["reference_s"],
                    bench["speedup"]))
        else:
            lines.append(
                "  %-12s %8.3fs (%.2f us/translation)" % (
                    name, bench["median_s"], bench["per_translation_us"]))
    ks = report["counters"].get("keystream_cache")
    if ks is not None:
        lines.append("  keystream cache: %d line hits / %d misses" % (
            ks["line_hits"], ks["line_misses"]))
    sharding = report["sharding"]
    lines.append(
        "  executor: mode=%s workers=%d spawn=%.3fs transport=%.3fs "
        "compute=%.3fs" % (
            sharding["mode"], sharding["workers_spawned"],
            sharding["spawn_s"], sharding["transport_s"],
            sharding["compute_s"]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.perfbench",
        description="Measure the simulator fast path against its "
                    "kept-simple reference twin.")
    parser.add_argument("--json", action="store_true",
                        help="write %s and print the JSON" % DEFAULT_OUTPUT)
    parser.add_argument("--out", default=DEFAULT_OUTPUT,
                        help="output path for --json (default %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        choices=sorted(BENCH_FNS), default=None,
                        help="run only the named benchmark (repeatable); "
                             "the CI regression gate uses "
                             "'--only guest_macro'")
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    report = run_all(quick=args.quick, jobs=args.jobs,
                     reuse_workers=not args.fresh_workers,
                     only=args.only)
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
