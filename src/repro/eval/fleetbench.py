"""Fleet-scale benchmark: 10k hosts / 50k guests in bounded time/memory.

Everything else under ``repro.eval`` measures either the modelled
machine (cycles) or the simulator's data path (seconds per operation);
this module measures the *fleet model's* capacity: how many hosts and
guests the discrete-event core (:mod:`repro.fleet`) can carry through a
full campaign — launch wave, 1k-migration storm, 5% correlated failure
wave with recovery, rolling fleet-wide key rotation, shutdown churn —
and at what events/second and peak RSS.

``python -m repro.eval.fleetbench --profile full --json`` writes
``BENCH_fleet.json`` (schema ``fidelius-fleetbench/1``).  The report
splits cleanly along the determinism contract:

* everything *modelled* — the scenario spec, the calibrated cost table,
  per-region outcomes, fleet totals, the cross-region state digest, and
  the 3-host lockstep differential against the real ``Cloud`` — is
  byte-identical across ``--jobs`` settings and machines
  (:func:`deterministic_digest` is the comparison key CI holds serial
  and sharded runs to);
* everything *measured* — wall seconds, events/second, peak RSS, the
  executor breakdown — lives in the ``sharding`` section, which
  :func:`repro.runner.merge.strip_timing` removes before digesting.

``--check`` exits non-zero when the profile's wall-clock or RSS target
is missed, so the CI smoke job is a real gate, not a plot.
"""

import argparse
import dataclasses
import json
import os
import resource
import sys
# fidelint: ignore[FID007] -- this module measures host wall-clock
# (fleet-model throughput, never modelled time); every modelled
# quantity comes from the virtual clock and the seeded RNGs.
import time

from repro.fleet import ScenarioSpec, load_cost_table, run_fleet
from repro.fleet.lockstep import run_lockstep
from repro.runner import add_jobs_argument
from repro.runner import merge as runner_merge

SCHEMA = "fidelius-fleetbench/1"
DEFAULT_OUTPUT = "BENCH_fleet.json"

#: campaign shapes; ``smoke`` is the CI profile, ``full`` the committed
#: 10k-host / 50k-guest artifact (ROADMAP item 2's acceptance numbers)
PROFILES = {
    "smoke": ScenarioSpec(
        hosts=200, guests=1_000, regions=4, policy="spread",
        storm_migrations=100, failure_fraction=0.05, rotate=True,
        autoscale_hosts=4, churn_shutdowns=100),
    "full": ScenarioSpec(
        hosts=10_000, guests=50_000, regions=20, policy="spread",
        storm_migrations=1_000, failure_fraction=0.05, rotate=True,
        autoscale_hosts=20, churn_shutdowns=1_000),
}

#: acceptance targets per profile: (max wall seconds, max peak RSS MiB)
TARGETS = {
    "smoke": (30.0, 1024),
    "full": (60.0, 2048),
}


def _peak_rss_mib():
    """Peak RSS over this process and its (reaped) workers, in MiB.

    ``ru_maxrss`` is KiB on Linux; RUSAGE_CHILDREN covers worker
    processes the executor has already joined.
    """
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(own, kids) / 1024.0


def _spec_dict(spec):
    return {
        "hosts": spec.hosts,
        "guests": spec.guests,
        "regions": spec.regions,
        "policy": spec.policy,
        "seed": spec.seed,
        "host_frames": spec.host_frames,
        "guest_frames": list(spec.guest_frames),
        "storm_migrations": spec.storm_migrations,
        "failure_fraction": spec.failure_fraction,
        "failure_groups": spec.failure_groups,
        "recover": spec.recover,
        "rotate": spec.rotate,
        "autoscale_hosts": spec.autoscale_hosts,
        "churn_shutdowns": spec.churn_shutdowns,
    }


def run_profile(profile, jobs=1, reuse_workers=True, costs=None,
                lockstep=True):
    """Run one named profile end to end and assemble the report."""
    try:
        spec = PROFILES[profile]
    except KeyError:
        raise ValueError("unknown profile %r (have: %s)"
                         % (profile, ", ".join(sorted(PROFILES))))
    if costs is not None:
        spec = dataclasses.replace(spec, costs=costs)
    started = time.perf_counter()
    run_report, regions, summary = run_fleet(spec, jobs=jobs,
                                             reuse_workers=reuse_workers)
    wall_s = time.perf_counter() - started
    lockstep_result = run_lockstep().asdict() if lockstep else None
    max_wall, max_rss = TARGETS[profile]
    pool = run_report.sharding
    return {
        "schema": SCHEMA,
        "profile": profile,
        "spec": _spec_dict(spec),
        "costs": spec.costs.asdict(),
        "fleet": summary,
        "regions": [
            {"region": r.region, "hosts": r.hosts, "events": r.events,
             "survivors": r.survivors, "clock_ns": r.clock_ns,
             "digest": r.digest}
            for r in regions
        ],
        "lockstep": lockstep_result,
        "targets": {"max_wall_s": max_wall, "max_rss_mib": max_rss},
        "sharding": {
            "jobs": run_report.jobs,
            "host_cpus": os.cpu_count() or 1,
            "wall_s": wall_s,
            "busy_s": run_report.busy_s,
            "utilization": run_report.utilization(),
            "events_per_s": summary["events"] / wall_s if wall_s else 0.0,
            "peak_rss_mib": _peak_rss_mib(),
            "mode": pool["mode"],
            "workers_spawned": pool["workers_spawned"],
            "shards": run_report.shard_counters(),
        },
    }


def deterministic_digest(report):
    """Digest of the report minus measured fields — equal across
    ``--jobs`` settings and machines iff the modelled fleet is."""
    return runner_merge.deterministic_digest(report)


def check_targets(report):
    """Target misses as human-readable strings (empty == pass)."""
    sharding = report["sharding"]
    targets = report["targets"]
    problems = []
    if sharding["wall_s"] > targets["max_wall_s"]:
        problems.append("wall %.1fs exceeds %.1fs target"
                        % (sharding["wall_s"], targets["max_wall_s"]))
    if sharding["peak_rss_mib"] > targets["max_rss_mib"]:
        problems.append("peak RSS %.0f MiB exceeds %d MiB target"
                        % (sharding["peak_rss_mib"],
                           targets["max_rss_mib"]))
    lockstep = report["lockstep"]
    if lockstep is not None and not lockstep["ok"]:
        problems.append("lockstep differential diverged: %s"
                        % "; ".join(lockstep["mismatches"]))
    return problems


def format_report(report):
    fleet = report["fleet"]
    sharding = report["sharding"]
    lines = [
        "Fleet benchmark (%s profile)" % report["profile"],
        "  fleet: %d hosts, %d guests requested, %d survivors, "
        "%d regions" % (fleet["hosts"], fleet["guests_requested"],
                        fleet["survivors"], fleet["regions"]),
        "  events: %d processed, %.2f virtual s modelled" % (
            fleet["events"], fleet["virtual_ns"] / 1e9),
        "  measured: %.2fs wall, %.0f events/s, %.0f MiB peak RSS, "
        "jobs=%d" % (sharding["wall_s"], sharding["events_per_s"],
                     sharding["peak_rss_mib"], sharding["jobs"]),
        "  digest: %s" % fleet["digest"],
    ]
    if report["lockstep"] is not None:
        lines.append("  lockstep vs real Cloud: %s (%d launches, "
                     "%d migrations)" % (
                         "OK" if report["lockstep"]["ok"] else "DIVERGED",
                         report["lockstep"]["launches"],
                         report["lockstep"]["migrations"]))
    problems = check_targets(report)
    lines.append("  targets: %s"
                 % ("PASS" if not problems else "; ".join(problems)))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.fleetbench",
        description="Benchmark the discrete-event fleet core at "
                    "datacenter population sizes.")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="smoke",
                        help="campaign shape (default %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="write %s and print the JSON" % DEFAULT_OUTPUT)
    parser.add_argument("--out", default=DEFAULT_OUTPUT,
                        help="output path for --json (default %(default)s)")
    parser.add_argument("--costs", default=None, metavar="BENCH_JSON",
                        help="calibrate the cost table from a perfbench "
                             "artifact (default: built-in calibration)")
    parser.add_argument("--no-lockstep", action="store_true",
                        help="skip the 3-host differential against the "
                             "real Cloud")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a wall/RSS target is "
                             "missed or the lockstep diverged")
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    costs = load_cost_table(args.costs) if args.costs else None
    report = run_profile(args.profile, jobs=args.jobs,
                         reuse_workers=not args.fresh_workers,
                         costs=costs, lockstep=not args.no_lockstep)
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if args.check:
        problems = check_targets(report)
        if problems:
            print("fleetbench: FAIL: %s" % "; ".join(problems),
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
