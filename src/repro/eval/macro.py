"""Macro benchmarks: Figures 5 (SPECCPU 2006) and 6 (PARSEC).

For each benchmark, a synthetic trace matching the profile's
characterization runs through the cache model; cycle totals for the
three configurations are then assembled from the *measured* miss count
and the measured per-event costs of the Fidelius mechanisms:

* **Xen** — core cycles + DRAM stalls + the host-interaction baseline
  (VM exits, NPT fills);
* **Fidelius** — adds one shadow+check round trip (661 cycles) per VM
  exit and one type 1 gate (306 cycles) per NPT update;
* **Fidelius-enc** — additionally pays the encryption-engine latency on
  every DRAM access (the paper simulated this with SME; we model the
  engine directly).
"""

from dataclasses import dataclass

from repro.common.constants import (
    DRAM_LATENCY_CYCLES,
    ENCRYPTION_EXTRA_CYCLES,
    GATE1_CYCLES,
    NPT_FILL_CYCLES,
    SHADOW_CHECK_CYCLES,
    VMEXIT_ROUNDTRIP_CYCLES,
)
from repro.runner import WorkUnit, execute
from repro.workloads.profiles import PARSEC_PROFILES, SPEC_PROFILES
from repro.workloads.tracegen import simulate_misses


@dataclass(frozen=True)
class MacroResult:
    name: str
    xen_cycles: float
    fidelius_cycles: float
    fidelius_enc_cycles: float
    measured_misses: int
    accesses: int

    @property
    def fidelius_overhead_pct(self):
        return 100.0 * (self.fidelius_cycles / self.xen_cycles - 1.0)

    @property
    def fidelius_enc_overhead_pct(self):
        return 100.0 * (self.fidelius_enc_cycles / self.xen_cycles - 1.0)


def evaluate_profile(profile, instructions=200_000, seed=0xACE5,
                     enc_extra_cycles=ENCRYPTION_EXTRA_CYCLES,
                     shadow_cycles=SHADOW_CHECK_CYCLES,
                     gate1_cycles=GATE1_CYCLES):
    """Cycle totals for one benchmark under the three configurations.

    The cost parameters are overridable so the sensitivity analysis can
    sweep them (``repro.eval.sensitivity``).
    """
    accesses = int(instructions * profile.mem_pki / 1000.0)
    misses, accesses = simulate_misses(profile, accesses, seed=seed)
    kiloinstr = instructions / 1000.0
    exits = kiloinstr * profile.vmexit_pki
    npt_updates = kiloinstr * profile.npt_update_pki

    core = instructions * profile.cpi_core
    dram = misses * DRAM_LATENCY_CYCLES
    host_baseline = exits * VMEXIT_ROUNDTRIP_CYCLES \
        + npt_updates * NPT_FILL_CYCLES

    xen = core + dram + host_baseline
    fidelius = xen + exits * shadow_cycles + npt_updates * gate1_cycles
    fidelius_enc = fidelius + misses * enc_extra_cycles
    return MacroResult(profile.name, xen, fidelius, fidelius_enc,
                       misses, accesses)


def run_figure(figure, instructions=200_000, seed=0xACE5, jobs=1,
               reuse_workers=True):
    """All rows of one figure: ``"fig5"`` (SPEC) or ``"fig6"`` (PARSEC).

    Each benchmark is an independent seeded simulation, so rows shard
    across ``jobs`` worker processes; the runner re-sorts them into
    profile order, keeping the figure byte-identical to a serial run.
    """
    profiles = {"fig5": SPEC_PROFILES, "fig6": PARSEC_PROFILES}[figure]
    units = [WorkUnit.of(p.name, evaluate_profile, p,
                         instructions=instructions, seed=seed)
             for p in profiles]
    return execute(units, jobs=jobs, reuse_workers=reuse_workers).values()


def average_overheads(results):
    """The figures' 'average' bars: arithmetic means of the overheads."""
    n = len(results)
    return (
        sum(r.fidelius_overhead_pct for r in results) / n,
        sum(r.fidelius_enc_overhead_pct for r in results) / n,
    )
