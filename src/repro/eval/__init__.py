"""The evaluation harness: regenerates every table and figure of the
paper's Sections 6 and 7.

Run ``python -m repro.eval all`` (or a single experiment id — see
``python -m repro.eval --help``).  The same entry points back the
pytest-benchmark targets under ``benchmarks/``.
"""

from repro.eval.macro import MacroResult, average_overheads, run_figure
from repro.eval.micro import (
    crypto_copy_benchmark,
    gate_cost_benchmark,
    shadow_cost_benchmark,
)
from repro.eval.fio_table import Table3Row, run_table3
from repro.eval.security import permission_matrix, priv_instruction_matrix

__all__ = [
    "MacroResult",
    "run_figure",
    "average_overheads",
    "gate_cost_benchmark",
    "shadow_cost_benchmark",
    "crypto_copy_benchmark",
    "Table3Row",
    "run_table3",
    "permission_matrix",
    "priv_instruction_matrix",
]
