"""Plain-text renderers printing the same rows/series the paper reports."""

from repro.eval.macro import average_overheads


def _bar(value, scale, width=24):
    filled = 0 if scale <= 0 else min(width, round(width * value / scale))
    return "#" * filled


def format_figure(results, title):
    """Figure 5/6 as a text chart: one bar per benchmark, like the
    paper's normalized-overhead plots."""
    scale = max(r.fidelius_enc_overhead_pct for r in results)
    lines = ["%s" % title,
             "%-15s %12s %14s  %s" % ("benchmark", "Fidelius(%)",
                                      "Fidelius-enc(%)", "enc overhead")]
    lines.append("-" * 72)
    for r in results:
        lines.append("%-15s %12.2f %14.2f  %s" % (
            r.name, r.fidelius_overhead_pct, r.fidelius_enc_overhead_pct,
            _bar(r.fidelius_enc_overhead_pct, scale)))
    fid_avg, enc_avg = average_overheads(results)
    lines.append("-" * 72)
    lines.append("%-15s %12.2f %14.2f  %s" % ("average", fid_avg, enc_avg,
                                              _bar(enc_avg, scale)))
    return "\n".join(lines)


def format_table3(rows):
    lines = ["Table 3: fio, Xen vs Fidelius AES-NI",
             "%-12s %16s %16s %10s" % ("operation", "Xen (B/kcyc)",
                                       "Fidelius", "slowdown")]
    lines.append("-" * 58)
    for row in rows:
        lines.append("%-12s %16.1f %16.1f %9.2f%%" % (
            row.name, row.xen_throughput, row.fidelius_throughput,
            row.slowdown_pct))
    return "\n".join(lines)


def format_gate_costs(costs):
    return "\n".join([
        "Micro benchmark 1: gate transition costs (cycles)",
        "  type 1 (disable WP):     %7.1f" % costs.type1_cycles,
        "  type 2 (checking loop):  %7.1f" % costs.type2_cycles,
        "  type 3 (add mapping):    %7.1f" % costs.type3_cycles,
        "    of which TLB flush:    %7.1f" % costs.type3_tlb_flush_cycles,
        "    write into cache:      %7.1f" % costs.write_into_cache_cycles,
        "  rejected CR3 switch:     %7.1f" % costs.cr3_switch_alternative_cycles,
    ])


def format_shadow_costs(costs):
    return "\n".join([
        "Micro benchmark 2: shadowing critical resources (cycles)",
        "  shadow + check per round trip: %7.1f" % costs.shadow_check_cycles,
        "  void hypercall, protected:     %7.1f"
        % costs.protected_roundtrip_cycles,
        "  void hypercall, unprotected:   %7.1f"
        % costs.unprotected_roundtrip_cycles,
        "  added by Fidelius:             %7.1f" % costs.added_cycles,
    ])


def format_crypto_costs(costs):
    return "\n".join([
        "Micro benchmark 3: in-guest encrypted copy",
        "  AES-NI slowdown:     %6.2f%%" % costs.aesni_slowdown_pct,
        "  SEV engine slowdown: %6.2f%%" % costs.sev_engine_slowdown_pct,
        "  software emulation:  %6.2fx" % costs.software_slowdown_x,
    ])


def format_xsa(stats):
    return "\n".join([
        "XSA quantitative analysis (Section 6.2)",
        "  advisories analyzed:            %4d" % stats["total"],
        "  hypervisor-related:             %4d" % stats["hypervisor_related"],
        "  privilege escalations thwarted: %4d (%.1f%%)" % (
            stats["privilege_escalation_thwarted"],
            stats["privilege_escalation_pct"]),
        "  information leaks thwarted:     %4d (%.1f%%)" % (
            stats["info_leak_thwarted"], stats["info_leak_pct"]),
        "  guest-internal flaws:           %4d" % stats["guest_internal"],
        "  DoS (out of scope):             %4d" % stats["dos_out_of_scope"],
    ])


def format_permission_matrix(rows):
    lines = ["Table 1: permissions and policies (observed)",
             "%-20s %-12s %s" % ("resource", "Xen perm", "policy")]
    lines.append("-" * 58)
    for row in rows:
        lines.append("%-20s %-12s %s" % (row.resource, row.xen_permission,
                                         row.policy))
    return "\n".join(lines)


def format_instruction_matrix(rows):
    lines = ["Table 2: privileged instructions (observed)",
             "%-10s %-28s %-26s %s" % ("instr", "description", "gate",
                                       "observed")]
    lines.append("-" * 100)
    for row in rows:
        lines.append("%-10s %-28s %-26s %s | %s" % (
            row.instruction, row.description, row.gate, row.observed,
            row.policy))
    return "\n".join(lines)
