"""Security-evaluation artefacts: the Table 1 / Table 2 matrices read
back from a *running* system, plus re-exports of the attack matrix and
XSA analysis used by the benchmarks."""

from dataclasses import dataclass

from repro.common.errors import PageFault, PolicyViolation
from repro.common.types import PrivOp
from repro.system import System


@dataclass(frozen=True)
class PermissionRow:
    resource: str
    xen_permission: str     # observed
    policy: str


def _probe_write(system, pa):
    try:
        system.machine.cpu.store(pa, b"\x00" * 8)
        return "writable"
    except (PolicyViolation, PageFault):
        pass
    try:
        system.machine.cpu.load(pa, 8)
        return "read-only"
    except (PolicyViolation, PageFault):
        return "no access"


def permission_matrix(system=None):
    """Table 1, observed: probe each resource class from the
    hypervisor's context and report the permission that actually holds."""
    system = system or System.create(fidelius=True, frames=2048, seed=0x7AB1)
    fid = system.fidelius
    machine = system.machine
    domain, _ = system.create_plain_guest("probe", guest_frames=16)
    _, xen_pt = machine.host_table_pages()[-1]
    rows = [
        PermissionRow("Page tables (Xen)",
                      _probe_write(system, xen_pt << 12),
                      "PIT based policy"),
        PermissionRow("NPT (guest VM)",
                      _probe_write(system, domain.npt.entry_pa(0)),
                      "PIT based policy"),
        PermissionRow("Grant tables",
                      _probe_write(system, domain.grant_table.entry_pa(0)),
                      "GIT based policy"),
        PermissionRow("Page info table",
                      _probe_write(system,
                                   next(iter(fid.pit.table_pfns)) << 12),
                      "Xen not writable"),
        PermissionRow("Grant info table",
                      _probe_write(system,
                                   next(iter(fid.git.table_pfns)) << 12),
                      "Xen not writable"),
        PermissionRow("Shadow states",
                      _probe_write(system, fid.shadow_area_pfns[0] << 12),
                      "Exit reasons based"),
        PermissionRow("SEV metadata",
                      _probe_write(system, fid.sev_metadata_pfns[0] << 12),
                      "Xen not accessible"),
    ]
    return rows


def plaintext_leak_scan(system, secrets):
    """Scan raw DRAM for secrets that must never sit in the clear.

    ``secrets`` is an iterable of ``(label, needle_bytes)``.  Returns a
    list of violation strings (empty = no leak): one per secret found in
    any frame of the cold-boot dump — the boundary every protected-guest
    secret must stay behind, whatever faults the platform absorbed.
    """
    violations = []
    dump = system.machine.cold_boot_dump()
    for label, needle in secrets:
        if not needle:
            continue
        for pfn in sorted(dump):
            if needle in dump[pfn]:
                violations.append("secret %r in the clear at pfn %#x"
                                  % (label, pfn))
                break
    return violations


@dataclass(frozen=True)
class InstructionRow:
    instruction: str
    description: str
    gate: str
    observed: str
    policy: str


_TABLE2 = [
    (PrivOp.MOV_CR0, "May disable PG and WP", "type 2: checking loop",
     "PG and WP bits cannot be cleared"),
    (PrivOp.MOV_CR4, "May disable SMEP", "type 2: checking loop",
     "SMEP bit cannot be cleared"),
    (PrivOp.WRMSR, "May disable NX", "type 2: checking loop",
     "NXE bit in EFER cannot be cleared"),
    (PrivOp.VMRUN, "May change the control flow", "type 3: add new mapping",
     "Specific VMCB fields cannot be tampered"),
    (PrivOp.MOV_CR3, "May switch address space", "type 3: add new mapping",
     "The target CR3 must be valid"),
]


def priv_instruction_matrix(system=None):
    """Table 2, observed: where each restricted instruction is reachable
    from the hypervisor's context after the install."""
    system = system or System.create(fidelius=True, frames=2048, seed=0x7AB2)
    fid = system.fidelius
    cpu = system.machine.cpu
    rows = []
    for op, description, gate, policy in _TABLE2:
        va = fid.text_image.va_of(op)
        observed = ("executable" if cpu.can_fetch(va)
                    else "inaccessible (gate-mapped only)")
        rows.append(InstructionRow(op.value, description, gate, observed,
                                   policy))
    return rows
