"""Micro benchmarks (Section 7.2): the three questions.

1. *What is the overhead of runtime transition between Xen and
   Fidelius?*  Measure the per-entry cost of each gate type.
2. *What is the overhead of shadowing critical resources?*  A void
   hypercall from a guest kernel module, protected vs unprotected.
3. *What is the overhead of I/O protection using AES-NI, the SEV API
   and software-emulated encryption?*  An in-guest copy under the three
   engines, against a plain copy.
"""

from dataclasses import dataclass

from repro.common.constants import (
    AESNI_EXTRA_CPB,
    COPY_BASE_CPB,
    CR0_PG,
    CR0_WP,
    SEV_ENGINE_EXTRA_CPB,
    SEV_IO_COMMAND_CYCLES,
    SOFTWARE_AES_CPB,
)
from repro.common.types import PrivOp
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


@dataclass(frozen=True)
class GateCosts:
    type1_cycles: float
    type2_cycles: float
    type3_cycles: float
    type3_tlb_flush_cycles: float
    write_into_cache_cycles: float
    cr3_switch_alternative_cycles: float


def gate_cost_benchmark(iterations=1000, system=None):
    """Average cycles per transition for each gate type."""
    system = system or System.create(fidelius=True, frames=2048, seed=0x6A7E)
    fid = system.fidelius
    cycles = system.machine.cycles

    snap = cycles.snapshot()
    for _ in range(iterations):
        with fid.gates.type1():
            pass
    type1 = snap.delta(cycles)["gate1"] / iterations

    snap = cycles.snapshot()
    for _ in range(iterations):
        fid.exec_monopolized(PrivOp.MOV_CR0, CR0_PG | CR0_WP)
    type2 = snap.delta(cycles)["gate2"] / iterations

    snap = cycles.snapshot()
    for _ in range(iterations):
        with fid.gates.type3(fid.text_pfns[1]):
            pass
    delta = snap.delta(cycles)
    flush = delta.get("tlb-flush-entry", 0) / iterations
    type3 = delta.get("gate3", 0) / iterations + flush

    # the "write the new PTE" component, measured through a benign
    # guarded write of an ordinary data mapping
    machine = system.machine
    data_pfn = machine.allocator.alloc()
    from repro.common.types import Owner, PageUsage
    # fidelint: ignore[FID002] -- benchmark scaffolding: classify the
    # probe frame from Fidelius's context so the guarded write is legal.
    fid.pit.classify(data_pfn, Owner.XEN, PageUsage.DATA)
    entry_pa = machine.walker.entry_pa(machine.host_root, data_pfn << 12)
    from repro.hw.pagetable import make_entry
    from repro.common.constants import PTE_PRESENT, PTE_WRITABLE
    snap = cycles.snapshot()
    fid.gates.guarded_write(
        entry_pa,
        make_entry(data_pfn, PTE_PRESENT | PTE_WRITABLE).to_bytes(8, "little"))
    cache_write = snap.delta(cycles).get("gate1-write", 0)

    snap = cycles.snapshot()
    for _ in range(iterations):
        with fid.gates.cr3_switch_transition():
            pass
    cr3_alt = snap.delta(cycles)["cr3-switch-gate"] / iterations

    return GateCosts(type1, type2, type3, flush, cache_write, cr3_alt)


@dataclass(frozen=True)
class ShadowCosts:
    shadow_check_cycles: float     # the paper's 661
    protected_roundtrip_cycles: float
    unprotected_roundtrip_cycles: float

    @property
    def added_cycles(self):
        return self.protected_roundtrip_cycles \
            - self.unprotected_roundtrip_cycles


def shadow_cost_benchmark(iterations=500, system=None):
    """Void-hypercall round trips, protected vs unprotected guest."""
    system = system or System.create(fidelius=True, frames=2048, seed=0x5AD)
    cycles = system.machine.cycles

    plain_domain, plain_ctx = system.create_plain_guest(
        "plain", guest_frames=16)
    plain_ctx._ensure_guest()
    snap = cycles.snapshot()
    for _ in range(iterations):
        plain_ctx.hypercall(hc.HC_VOID)
    unprotected = cycles.since(snap) / iterations
    plain_ctx.hypercall(hc.HC_SCHED_YIELD)

    owner = GuestOwner(seed=0x5AD0)
    domain, ctx = system.boot_protected_guest(
        "shadowed", owner, payload=b"bench", guest_frames=32)
    ctx._ensure_guest()
    snap = cycles.snapshot()
    for _ in range(iterations):
        ctx.hypercall(hc.HC_VOID)
    delta = snap.delta(cycles)
    protected = cycles.since(snap) / iterations
    shadow = (delta.get("shadow-exit", 0)
              + delta.get("shadow-verify", 0)) / iterations
    return ShadowCosts(shadow, protected, unprotected)


@dataclass(frozen=True)
class CryptoCopyCosts:
    plain_cycles: float
    aesni_slowdown_pct: float
    sev_engine_slowdown_pct: float
    software_slowdown_x: float


def crypto_copy_benchmark(megabytes=64):
    """In-guest memory copy under the three encryption engines.

    The copy itself costs ``COPY_BASE_CPB`` per byte; each engine adds
    its per-byte cost (plus, for the SEV path, the per-batch firmware
    command).  Matches the paper's 512 MB experiment at any size.
    """
    size = megabytes * 1024 * 1024
    plain = size * COPY_BASE_CPB
    aesni = plain + size * AESNI_EXTRA_CPB
    batches = size // (4 * 4096)
    sev = plain + size * SEV_ENGINE_EXTRA_CPB \
        + batches * SEV_IO_COMMAND_CYCLES / 1000.0
    software = plain + size * SOFTWARE_AES_CPB
    return CryptoCopyCosts(
        plain_cycles=plain,
        aesni_slowdown_pct=100.0 * (aesni / plain - 1.0),
        sev_engine_slowdown_pct=100.0 * (sev / plain - 1.0),
        software_slowdown_x=software / plain,
    )
