"""Functional (measured, not modelled) overhead comparison.

The macro model of ``repro.eval.macro`` derives Figure 5/6 from traces
and the calibrated cost model.  This module is its cross-check: it runs
*real guest programs* (``repro.workloads.guestprogs``) through the full
functional stack on a baseline host and a Fidelius host and compares
the cycle counters the simulation actually charged.  The two approaches
must agree on the story: compute-bound work pays almost nothing, and
the per-exit shadow tax only shows on exit-heavy work.
"""

from dataclasses import dataclass

from repro.system import GuestOwner, System
from repro.workloads.guestprogs import CryptoWorker, SessionServer


@dataclass(frozen=True)
class FunctionalResult:
    workload: str
    baseline_cycles: int
    fidelius_cycles: int

    @property
    def overhead_pct(self):
        return 100.0 * (self.fidelius_cycles / self.baseline_cycles - 1.0)


def _run_worker(system, ctx, rounds):
    cycles = system.machine.cycles
    worker = CryptoWorker(ctx, pages=8)
    snapshot = cycles.snapshot()
    worker.run(rounds)
    return cycles.since(snapshot)


def _run_server(system, ctx, requests):
    cycles = system.machine.cycles
    server = SessionServer(ctx)
    snapshot = cycles.snapshot()
    server.serve(requests)
    return cycles.since(snapshot)


def _hosts(seed):
    baseline = System.create(fidelius=False, frames=2048, seed=seed)
    base_domain, base_ctx = baseline.create_baseline_sev_guest(
        "func", guest_frames=48)
    protected = System.create(fidelius=True, frames=2048, seed=seed)
    owner = GuestOwner(seed=seed)
    prot_domain, prot_ctx = protected.boot_protected_guest(
        "func", owner, payload=b"bench", guest_frames=48)
    return (baseline, base_ctx), (protected, prot_ctx)


def run_functional(rounds=6, requests=60, seed=0xF17C):
    """Both workloads on both hosts; returns FunctionalResults."""
    (baseline, base_ctx), (protected, prot_ctx) = _hosts(seed)
    results = [
        FunctionalResult(
            "compute-bound (CryptoWorker)",
            _run_worker(baseline, base_ctx, rounds),
            _run_worker(protected, prot_ctx, rounds),
        ),
        FunctionalResult(
            "exit-heavy (SessionServer)",
            _run_server(baseline, base_ctx, requests),
            _run_server(protected, prot_ctx, requests),
        ),
    ]
    return results


def format_functional(results):
    lines = ["Functional cross-check (measured cycles, full stack)",
             "%-30s %14s %14s %10s" % ("workload", "Xen", "Fidelius",
                                       "overhead")]
    lines.append("-" * 72)
    for r in results:
        lines.append("%-30s %14d %14d %9.2f%%" % (
            r.workload, r.baseline_cycles, r.fidelius_cycles,
            r.overhead_pct))
    return "\n".join(lines)
