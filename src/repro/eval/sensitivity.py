"""Sensitivity analysis: how the reproduction's conclusions move as the
calibration constants move.

Two sweeps, both directly relevant to the paper's argument:

* **encryption latency** — the engine's added DRAM latency is the one
  parameter that varies across silicon generations (the paper had to
  simulate SEV with SME at all!).  The sweep shows the figure-5 shape
  is robust: memory-bound benchmarks scale with the latency, CPU-bound
  ones stay flat, and the crossover ordering never changes.
* **exit rate** — Fidelius's fixed per-exit shadow cost (661 cycles)
  determines how exit-heavy a workload must be before the
  no-encryption Fidelius column stops being "negligible".
"""

from dataclasses import dataclass, replace

from repro.eval.macro import evaluate_profile
from repro.runner import WorkUnit, execute
from repro.workloads.profiles import profile_by_name

DEFAULT_LATENCIES = (0, 9, 18, 36, 54, 72)
DEFAULT_EXIT_RATES = (0.001, 0.01, 0.1, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class SweepPoint:
    x: float
    overhead_pct: float


def _latency_point(name, latency, instructions):
    """One sweep point — a module-level function so shards can run it."""
    result = evaluate_profile(profile_by_name(name),
                              instructions=instructions,
                              enc_extra_cycles=latency)
    return SweepPoint(latency, result.fidelius_enc_overhead_pct
                      - result.fidelius_overhead_pct)


def _exit_rate_point(base_benchmark, rate, instructions):
    profile = replace(profile_by_name(base_benchmark), vmexit_pki=rate)
    result = evaluate_profile(profile, instructions=instructions)
    return SweepPoint(rate, result.fidelius_overhead_pct)


def encryption_latency_sweep(benchmarks=("mcf", "gcc", "hmmer"),
                             latencies=DEFAULT_LATENCIES,
                             instructions=100_000, jobs=1,
                             reuse_workers=True):
    """Fidelius-enc overhead as a function of engine latency.

    Every (benchmark, latency) point is an independent simulation, so
    the sweep shards across ``jobs`` workers and merges back into the
    same nested shape a serial run produces.
    """
    units = [WorkUnit.of((name, latency), _latency_point,
                         name, latency, instructions)
             for name in benchmarks for latency in latencies]
    values = iter(execute(units, jobs=jobs,
                          reuse_workers=reuse_workers).values())
    return {name: [next(values) for _ in latencies]
            for name in benchmarks}


def exit_rate_sweep(base_benchmark="gcc", rates=DEFAULT_EXIT_RATES,
                    instructions=100_000, jobs=1, reuse_workers=True):
    """Fidelius (no encryption) overhead as a function of VM-exit rate."""
    units = [WorkUnit.of(rate, _exit_rate_point,
                         base_benchmark, rate, instructions)
             for rate in rates]
    return execute(units, jobs=jobs, reuse_workers=reuse_workers).values()


def format_latency_sweep(sweeps):
    latencies = [point.x for point in next(iter(sweeps.values()))]
    lines = ["Sensitivity: encryption-engine latency (cycles/line-fill)",
             "%-10s" % "latency" + "".join("%10.0f" % x for x in latencies)]
    for name, series in sweeps.items():
        lines.append("%-10s" % name
                     + "".join("%9.2f%%" % p.overhead_pct for p in series))
    return "\n".join(lines)


def format_exit_rate_sweep(series):
    lines = ["Sensitivity: VM-exit rate (exits per kilo-instruction)"]
    for point in series:
        lines.append("  rate %6.3f -> Fidelius overhead %6.2f%%"
                     % (point.x, point.overhead_pct))
    return "\n".join(lines)


def shape_is_robust(sweeps):
    """True if the benchmark *ordering* is identical at every latency —
    the property that makes the reproduction conclusions portable."""
    latencies = range(len(next(iter(sweeps.values()))))
    orderings = set()
    for index in list(latencies)[1:]:  # latency 0 is deliberately flat
        ordering = tuple(sorted(
            sweeps, key=lambda n: sweeps[n][index].overhead_pct))
        orderings.add(ordering)
    return len(orderings) == 1
