"""Command-line entry point: regenerate any of the paper's artefacts.

    python -m repro.eval fig5         # Figure 5: SPECCPU 2006
    python -m repro.eval fig6         # Figure 6: PARSEC
    python -m repro.eval table3       # Table 3: fio
    python -m repro.eval micro-gates  # §7.2 question 1
    python -m repro.eval micro-shadow # §7.2 question 2
    python -m repro.eval micro-crypto # §7.2 question 3
    python -m repro.eval xsa          # §6.2 XSA analysis
    python -m repro.eval attacks      # §6 attack matrix
    python -m repro.eval tables12     # Tables 1 & 2, observed
    python -m repro.eval all
"""

import argparse
import sys

from repro.eval import (
    crypto_copy_benchmark,
    gate_cost_benchmark,
    permission_matrix,
    priv_instruction_matrix,
    run_figure,
    run_table3,
    shadow_cost_benchmark,
)
from repro.eval import tables
from repro.runner import add_jobs_argument


def _fig(which, jobs=1, reuse_workers=True):
    title = {"fig5": "Figure 5: SPECCPU 2006 normalized overhead",
             "fig6": "Figure 6: PARSEC normalized overhead"}[which]
    print(tables.format_figure(
        run_figure(which, jobs=jobs, reuse_workers=reuse_workers), title))


def _table3():
    print(tables.format_table3(run_table3()))


def _micro_gates():
    print(tables.format_gate_costs(gate_cost_benchmark()))


def _micro_shadow():
    print(tables.format_shadow_costs(shadow_cost_benchmark()))


def _micro_crypto():
    print(tables.format_crypto_costs(crypto_copy_benchmark()))


def _xsa():
    from repro.attacks import analyze_xsa
    print(tables.format_xsa(analyze_xsa()))


def _attacks(jobs=1, reuse_workers=True):
    from repro.attacks import format_matrix, run_matrix
    print(format_matrix(run_matrix(jobs=jobs, reuse_workers=reuse_workers)))


def _tables12():
    print(tables.format_permission_matrix(permission_matrix()))
    print()
    print(tables.format_instruction_matrix(priv_instruction_matrix()))


def _sensitivity(jobs=1, reuse_workers=True):
    from repro.eval.sensitivity import (
        encryption_latency_sweep,
        exit_rate_sweep,
        format_exit_rate_sweep,
        format_latency_sweep,
    )
    print(format_latency_sweep(encryption_latency_sweep(
        jobs=jobs, reuse_workers=reuse_workers)))
    print()
    print(format_exit_rate_sweep(exit_rate_sweep(
        jobs=jobs, reuse_workers=reuse_workers)))


def _report():
    from repro.eval.report import generate_report
    print(generate_report())


def _functional():
    from repro.eval.functional import format_functional, run_functional
    print(format_functional(run_functional()))


def _export():
    from repro.eval.export import export_all
    for path in export_all("eval-output"):
        print("wrote", path)


#: experiments whose independent work units shard across ``--jobs``
PARALLEL_COMMANDS = {
    "fig5": lambda jobs, reuse: _fig("fig5", jobs=jobs,
                                     reuse_workers=reuse),
    "fig6": lambda jobs, reuse: _fig("fig6", jobs=jobs,
                                     reuse_workers=reuse),
    "attacks": lambda jobs, reuse: _attacks(jobs, reuse_workers=reuse),
    "sensitivity": lambda jobs, reuse: _sensitivity(jobs,
                                                    reuse_workers=reuse),
}

COMMANDS = {
    "fig5": lambda: _fig("fig5"),
    "fig6": lambda: _fig("fig6"),
    "table3": _table3,
    "micro-gates": _micro_gates,
    "micro-shadow": _micro_shadow,
    "micro-crypto": _micro_crypto,
    "xsa": _xsa,
    "attacks": _attacks,
    "tables12": _tables12,
    "sensitivity": _sensitivity,
    "report": _report,
    "functional": _functional,
    "export": _export,
}


def _dispatch(name, jobs, reuse_workers=True):
    if jobs != 1 and name in PARALLEL_COMMANDS:
        PARALLEL_COMMANDS[name](jobs, reuse_workers)
    else:
        COMMANDS[name]()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", choices=list(COMMANDS) + ["all"])
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in COMMANDS:
            print("=" * 72)
            _dispatch(name, args.jobs, not args.fresh_workers)
            print()
        return 0
    _dispatch(args.experiment, args.jobs, not args.fresh_workers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
