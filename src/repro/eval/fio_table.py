"""Table 3: fio over the PV block path, Xen vs Fidelius + AES-NI."""

from dataclasses import dataclass

from repro.system import GuestOwner, System
from repro.workloads.fio import FioRunner, TABLE3_SPECS


@dataclass(frozen=True)
class Table3Row:
    name: str
    xen_throughput: float        # bytes per kilocycle
    fidelius_throughput: float

    @property
    def slowdown_pct(self):
        return 100.0 * (1.0 - self.fidelius_throughput / self.xen_throughput)


def _baseline_runner(frames, seed):
    system = System.create(fidelius=False, frames=frames, seed=seed)
    domain, ctx = system.create_plain_guest("fio", guest_frames=96)
    return FioRunner(system, domain, ctx, encoder=None, seed=seed)


def _fidelius_runner(frames, seed):
    system = System.create(fidelius=True, frames=frames, seed=seed)
    owner = GuestOwner(seed=seed)
    domain, ctx = system.boot_protected_guest(
        "fio", owner, payload=b"fio guest", guest_frames=96)
    encoder = system.aesni_encoder_for(ctx)
    return FioRunner(system, domain, ctx, encoder=encoder, seed=seed)


def run_table3(frames=4096, seed=0xF10):
    """All four rows, each on fresh hosts with matching RNG streams."""
    rows = []
    for spec in TABLE3_SPECS:
        baseline = _baseline_runner(frames, seed)
        fidelius = _fidelius_runner(frames, seed)
        rows.append(Table3Row(
            name=spec.name,
            xen_throughput=baseline.throughput(spec),
            fidelius_throughput=fidelius.throughput(spec),
        ))
    return rows
