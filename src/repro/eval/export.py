"""Machine-readable exports of every experiment (JSON and CSV).

``python -m repro.eval export <directory>`` writes one file per
artefact so external plotting pipelines (gnuplot, pandas, a spreadsheet)
can regenerate the paper's figures from the measured data.
"""

import csv
import io
import json

from repro.eval.fio_table import run_table3
from repro.eval.macro import average_overheads, run_figure
from repro.eval.micro import (
    crypto_copy_benchmark,
    gate_cost_benchmark,
    shadow_cost_benchmark,
)


def figure_rows(figure):
    results = run_figure(figure)
    rows = [
        {
            "benchmark": r.name,
            "fidelius_overhead_pct": round(r.fidelius_overhead_pct, 4),
            "fidelius_enc_overhead_pct":
                round(r.fidelius_enc_overhead_pct, 4),
            "measured_misses": r.measured_misses,
            "accesses": r.accesses,
        }
        for r in results
    ]
    fid_avg, enc_avg = average_overheads(results)
    rows.append({
        "benchmark": "average",
        "fidelius_overhead_pct": round(fid_avg, 4),
        "fidelius_enc_overhead_pct": round(enc_avg, 4),
        "measured_misses": "",
        "accesses": "",
    })
    return rows


def table3_rows():
    return [
        {
            "operation": r.name,
            "xen_throughput": round(r.xen_throughput, 4),
            "fidelius_throughput": round(r.fidelius_throughput, 4),
            "slowdown_pct": round(r.slowdown_pct, 4),
        }
        for r in run_table3()
    ]


def micro_rows():
    gates = gate_cost_benchmark(iterations=200)
    shadow = shadow_cost_benchmark(iterations=100)
    crypto = crypto_copy_benchmark(megabytes=64)
    return [
        {"quantity": "gate1_cycles", "value": gates.type1_cycles},
        {"quantity": "gate2_cycles", "value": gates.type2_cycles},
        {"quantity": "gate3_cycles", "value": gates.type3_cycles},
        {"quantity": "tlb_flush_cycles",
         "value": gates.type3_tlb_flush_cycles},
        {"quantity": "shadow_check_cycles",
         "value": shadow.shadow_check_cycles},
        {"quantity": "aesni_copy_slowdown_pct",
         "value": round(crypto.aesni_slowdown_pct, 4)},
        {"quantity": "sev_copy_slowdown_pct",
         "value": round(crypto.sev_engine_slowdown_pct, 4)},
        {"quantity": "software_copy_slowdown_x",
         "value": round(crypto.software_slowdown_x, 4)},
    ]


def to_csv(rows):
    """Rows (list of dicts with a shared schema) as CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


ARTEFACTS = {
    "fig5": lambda: figure_rows("fig5"),
    "fig6": lambda: figure_rows("fig6"),
    "table3": table3_rows,
    "micro": micro_rows,
}


def export_all(directory):
    """Write every artefact as both .json and .csv; returns the paths."""
    import os
    os.makedirs(directory, exist_ok=True)
    written = []
    for name, producer in ARTEFACTS.items():
        rows = producer()
        json_path = os.path.join(directory, "%s.json" % name)
        with open(json_path, "w") as handle:
            json.dump(rows, handle, indent=2)
        csv_path = os.path.join(directory, "%s.csv" % name)
        with open(csv_path, "w") as handle:
            handle.write(to_csv(rows))
        written += [json_path, csv_path]
    return written
