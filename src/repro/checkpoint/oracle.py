"""The restore-equivalence oracle: ``restore(snapshot(x))`` == ``x``.

A checkpoint is only trustworthy if a restored fleet is *semantically
indistinguishable* from the one that was snapshotted — same bytes in
DRAM, same cycle ledgers, same TLB and key-slot state, same RNG future.
This harness proves it differentially: snapshot a live
:class:`~repro.cloud.Cloud`, restore a clone from the chunks, then
drive original and clone through an identical seeded stream of 1000+
operations — guest reads and writes, hypercall traps, cross-host
migrations, and key rotations (the paper's snapshot/restore path, which
re-keys a guest under a fresh K_vek and ASID) — comparing
per-op return values and, on a fixed cadence, every machine's
:meth:`~repro.hw.machine.Machine.state_digest` and RNG state.

Any divergence raises :class:`CheckpointError` naming the first step
where the two fleets disagree.  The op stream is derived from its own
``random.Random(seed)`` so the harness itself adds no hidden state;
everything inside the fleets draws from the machines' own RNGs, which
the snapshot round-trips.
"""

import random

from repro.checkpoint.snapshot import restore, snapshot
from repro.checkpoint.store import CheckpointError, MemoryChunkStore
from repro.cloud import Cloud
from repro.core import migration
from repro.system import GuestOwner
from repro.xen import hypercalls as hc

#: Guest size for oracle tenants (pages).
GUEST_FRAMES = 32


def _op_stream(rng, nops, tenants):
    """A seeded list of primitive op tuples, shared by both fleets."""
    span = GUEST_FRAMES * 4096 - 256
    ops = []
    for _ in range(nops):
        tenant = rng.randrange(tenants)
        roll = rng.random()
        if roll < 0.45:
            length = rng.randrange(1, 129)
            data = bytes(rng.getrandbits(8) for _ in range(length))
            ops.append(("write", tenant, rng.randrange(span), data))
        elif roll < 0.75:
            ops.append(("read", tenant, rng.randrange(span),
                        rng.randrange(1, 129)))
        elif roll < 0.90:
            ops.append(("yield", tenant))
        elif roll < 0.96:
            ops.append(("migrate", tenant))
        else:
            ops.append(("rotate", tenant))
    return ops


def _rotate(cloud, tenant):
    """Re-key one tenant in place: SEND it to the local platform,
    destroy the stopped source, RECEIVE it back as a fresh domain with
    a fresh K_vek and ASID on the same host — the paper's §4.3.6
    snapshot/restore path, which is the closest thing SEV has to key
    rotation."""
    host = cloud.host(tenant.host_index)
    package = migration.snapshot_guest(host.fidelius, tenant.domain)
    host.hypervisor.destroy_domain(tenant.domain)
    domain, ctx = migration.restore_guest(host.fidelius, package)
    tenant.domain = domain
    tenant.ctx = ctx


def _apply(cloud, op):
    """Run one op tuple; returns whatever the guest observed.

    Memory ops end with a SCHED_YIELD so the CPU is back in host mode
    before the next op — the single physical CPU time-shares between
    tenants, and only a yielded CPU can enter a different vCPU.
    """
    kind = op[0]
    tenant = cloud.tenants["t%d" % op[1]]
    if kind == "write":
        tenant.ctx.write(op[2], op[3])
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        return None
    if kind == "read":
        data = tenant.ctx.read(op[2], op[3])
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        return data
    if kind == "yield":
        return tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
    if kind == "migrate":
        cloud.migrate_tenant(tenant.name)
        return tenant.host_index
    if kind == "rotate":
        _rotate(cloud, tenant)
        return tenant.domain.asid
    raise CheckpointError("unknown oracle op %r" % kind)


def _fingerprint(cloud):
    """Everything the lockstep comparison holds equal each check."""
    return {
        "machines": [host.machine.state_digest() for host in cloud.hosts],
        "rng": [host.machine.rng.getstate() for host in cloud.hosts],
        "tenants": {name: (t.host_index, t.domain.asid,
                           t.domain.perf_stats())
                    for name, t in cloud.tenants.items()},
        "events": (cloud.events_recorded, cloud.event_kinds()),
    }


def _compare(cloud, clone, step):
    a, b = _fingerprint(cloud), _fingerprint(clone)
    for key in a:
        if a[key] != b[key]:
            raise CheckpointError(
                "restore-equivalence violated at op %d: %s diverged "
                "between the original fleet and its restored clone"
                % (step, key))


def lockstep_check(seed, nops=1000, hosts=3, tenants=2, frames=512,
                   check_every=25):
    """Snapshot, restore, and drive both fleets in lockstep.

    Raises :class:`CheckpointError` at the first divergence; returns a
    small report dict when the fleets stay equivalent through all
    ``nops`` operations.
    """
    rng = random.Random(seed)
    cloud = Cloud(hosts=hosts, frames=frames, seed=0xACE0 + seed)
    for index in range(tenants):
        cloud.launch_tenant(
            "t%d" % index, GuestOwner(seed=seed * 7 + index),
            payload=b"ORACLE|%d|%d|" % (seed, index),
            guest_frames=GUEST_FRAMES)
    store = MemoryChunkStore()
    manifest = snapshot(cloud, store, kind="oracle",
                        meta={"seed": seed})
    clone = restore(manifest, store)
    _compare(cloud, clone, step=0)

    ops = _op_stream(rng, nops, tenants)
    checks = 1
    for step, op in enumerate(ops, 1):
        got = _apply(cloud, op)
        clone_got = _apply(clone, op)
        if got != clone_got:
            raise CheckpointError(
                "restore-equivalence violated at op %d (%s): original "
                "observed %r, clone observed %r"
                % (step, op[0], got, clone_got))
        if step % check_every == 0 or step == len(ops):
            _compare(cloud, clone, step)
            checks += 1
    kinds = [op[0] for op in ops]
    return {
        "seed": seed,
        "ops": len(ops),
        "checks": checks,
        "migrations": kinds.count("migrate"),
        "rotations": kinds.count("rotate"),
        "chunks": store.chunks_written,
        "deduped": store.chunks_deduped,
    }


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint.oracle",
        description="differentially verify restore(snapshot(cloud)) "
                    "stays in lockstep with the original")
    parser.add_argument("--seeds", type=int, default=3,
                        help="seeds 0..N-1 to check (default %(default)s)")
    parser.add_argument("--ops", type=int, default=1000)
    parser.add_argument("--hosts", type=int, default=3)
    parser.add_argument("--tenants", type=int, default=2)
    args = parser.parse_args(argv)
    for seed in range(args.seeds):
        report = lockstep_check(seed, nops=args.ops, hosts=args.hosts,
                                tenants=args.tenants)
        print("seed=%d ops=%d checks=%d migrations=%d rotations=%d "
              "LOCKSTEP" % (seed, report["ops"], report["checks"],
                            report["migrations"], report["rotations"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
