"""Snapshot and restore of live simulator object graphs.

``snapshot(target, store)`` serializes a :class:`~repro.system.System`,
a :class:`~repro.cloud.Cloud`, a bare :class:`~repro.hw.machine.Machine`
— or any picklable object graph that *contains* machines — into a
:class:`~repro.checkpoint.store.CheckpointStore`:

* every touched DRAM frame of every machine travels as one
  content-addressed chunk (page-granular dedup: an idle fleet's
  successive checkpoints share almost all their pages);
* the remaining object graph — VMCBs, page tables, TLB and plaintext
  cache contents, cycle ledgers, per-ASID key slots, RNG state,
  Fidelius metadata (``received_imports``, quarantine, event ring) —
  is pickled with the frames detached and stored as graph chunks;
* the manifest records the format version and a fingerprint of the
  audited module-state registry (:mod:`repro.common.state_registry`).

``restore`` **fails closed**: a manifest with the wrong format version
or a registry fingerprint that does not match the running tree is
rejected before any state is touched — a checkpoint written under a
different inventory of module-level state must not be half-restored.

Process-global derived caches (the keystream cache) are *not* captured:
they are wall-clock-transparent by contract, and restore resets them
through their registered reset hooks — fidelint FID016 pins every
``derived-cache`` registry entry to a reset reachable from
:func:`restore`.
"""

import hashlib
import pickle

from repro.common import crypto
from repro.common.constants import PAGE_SIZE
from repro.common.state_registry import all_entries
from repro.checkpoint.store import CheckpointError, CheckpointStore

#: Format version: bump on any incompatible manifest or payload change.
MANIFEST_SCHEMA = "fidelius-checkpoint/1"

#: Graph pickle chunk size: small enough to dedup a mostly-unchanged
#: graph's tail, large enough to keep per-chunk overhead trivial.
GRAPH_CHUNK_BYTES = 1 << 18


def registry_fingerprint():
    """SHA-256 hex over the canonical module-state registry.

    Every entry's identity, classification and reset hook enter the
    hash, so *any* change to the audited inventory of module-level
    state — new caches, reclassifications, renamed reset hooks —
    changes the fingerprint and invalidates older checkpoints (fail
    closed rather than silently restoring against different global
    state assumptions).
    """
    lines = ["%s|%s|%s|%s" % (e.module, e.name, e.classification,
                              e.reset or "-")
             for e in all_entries()]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _machines_of(target):
    """Every :class:`Machine` inside ``target``, in canonical order."""
    if hasattr(target, "hosts"):                       # Cloud
        return [host.machine for host in target.hosts]
    if hasattr(target, "machine"):                     # System
        return [target.machine]
    if hasattr(target, "memory") and hasattr(target, "memctrl"):
        return [target]                                # bare Machine
    raise CheckpointError(
        "cannot find machines inside %r: pass machines= explicitly"
        % type(target).__name__)


def snapshot(target, store, kind="system", meta=None, machines=None):
    """Serialize ``target`` into ``store``; returns the manifest dict.

    ``machines`` overrides machine discovery for composite targets
    (e.g. a dict bundling a cloud with harness bookkeeping).  When
    ``store`` is a :class:`CheckpointStore` the caller typically
    follows up with ``store.commit(manifest)``; with a bare chunk
    store the manifest is the caller's to keep.
    """
    machines = _machines_of(target) if machines is None else list(machines)
    page_records = []
    detached = []
    try:
        for machine in machines:
            stack = machine.memory.detached_frames()
            frames = stack.__enter__()
            detached.append(stack)
            pages = {}
            for pfn in sorted(frames):
                pages[str(pfn)] = store.put(bytes(frames[pfn]))
            page_records.append({"frames": machine.memory.frames,
                                 "pages": pages})
        graph = pickle.dumps(target, protocol=4)
    finally:
        while detached:
            detached.pop().__exit__(None, None, None)
    graph_chunks = [store.put(graph[i:i + GRAPH_CHUNK_BYTES])
                    for i in range(0, len(graph), GRAPH_CHUNK_BYTES)]
    return {
        "schema": MANIFEST_SCHEMA,
        "registry": registry_fingerprint(),
        "kind": kind,
        "machines": page_records,
        "graph": graph_chunks,
        "graph_bytes": len(graph),
        "meta": dict(meta or {}),
    }


def _check_guards(manifest):
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise CheckpointError(
            "checkpoint format %r does not match this build's %r: "
            "refusing to restore" % (schema, MANIFEST_SCHEMA))
    fingerprint = manifest.get("registry")
    if fingerprint != registry_fingerprint():
        raise CheckpointError(
            "checkpoint was written against a different module-state "
            "registry (%s != %s): refusing to restore"
            % (fingerprint, registry_fingerprint()))


def restore(manifest, store, machines_of=None):
    """Rebuild the object graph a manifest describes; fails closed.

    The format-version and state-registry guards run before any chunk
    is read.  After the graph and every DRAM page are back, the
    process-global derived caches are reset (they may hold state from
    whatever this process ran before the restore).  ``machines_of``
    mirrors ``snapshot``'s ``machines=`` override for composite
    targets: a callable mapping the unpickled graph to its machines,
    in the order the snapshot listed them.
    """
    _check_guards(manifest)
    graph = b"".join(store.get(digest) for digest in manifest["graph"])
    if len(graph) != manifest.get("graph_bytes"):
        raise CheckpointError("graph payload size mismatch")
    target = pickle.loads(graph)
    machines = _machines_of(target) if machines_of is None \
        else list(machines_of(target))
    records = manifest["machines"]
    if len(machines) != len(records):
        raise CheckpointError(
            "manifest describes %d machines, graph contains %d"
            % (len(records), len(machines)))
    for machine, record in zip(machines, records):
        if machine.memory.frames != record["frames"]:
            raise CheckpointError("machine geometry mismatch")
        machine.memory.import_frames(
            (int(pfn), _page(store, digest))
            for pfn, digest in record["pages"].items())
    crypto.clear_keystream_cache()
    return target


def _page(store, digest):
    raw = store.get(digest)
    if len(raw) != PAGE_SIZE:
        raise CheckpointError("page chunk %s is %d bytes, not one page"
                              % (digest, len(raw)))
    return raw


def restore_latest(store):
    """Restore the newest verifiable checkpoint of a
    :class:`CheckpointStore`; returns ``(manifest, target)``."""
    if not isinstance(store, CheckpointStore):
        raise CheckpointError("restore_latest needs a CheckpointStore")
    manifest = store.require_latest()
    return manifest, restore(manifest, store)
