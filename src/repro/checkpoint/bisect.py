"""Time-travel bisection: shrink a failing soak to a minimal fault window.

A failing chaos-soak seed fires some number of fault events; usually
only a contiguous handful of them actually matter.  This module binary-
searches that window: re-run the scenario with a
:class:`~repro.faults.inject.FireWindow` admitting only firings
``[skip, limit)`` — suppressed firings still consume budgets and RNG
draws, so the trigger schedule is identical in every trial — and
narrow ``limit`` down, then ``skip`` up, until the predicate is pinned
to the smallest window that still reproduces it.

The result is a ``fidelius-bisect/1`` artifact: seed, window, the
admitted fault events, and (when a checkpoint directory is given) the
in-seed checkpoint written nearest *before* the window opens — together
a minimal ``(checkpoint, fault-window)`` repro recipe.

Layering: this module sits below the fault layer, so it never imports
it.  The scenario runner is named by dotted path (default
``repro.faults.soak``) and loaded through :mod:`importlib`; it must
expose ``run_scenario(seed, ..., window=)`` and a ``fire_window(skip,
limit)`` factory — dependency inversion instead of an import back-edge.
"""

import importlib
import json

from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    atomic_write,
)

#: Artifact format version.
ARTIFACT_SCHEMA = "fidelius-bisect/1"

#: Dotted path of the default scenario runner module.
DEFAULT_RUNNER = "repro.faults.soak"


def predicate_holds(predicate, result):
    """Does ``result`` exhibit the failure being bisected?

    ``violations`` — any property violation; ``failed-op:<name>`` — the
    named workload op raised (useful for pinning down which fault made
    an operation fail cleanly when the run is otherwise violation-free).
    """
    if predicate == "violations":
        return bool(result.violations)
    if predicate.startswith("failed-op:"):
        name = predicate[len("failed-op:"):]
        return any(op == name for op, _ in result.failed_ops)
    raise CheckpointError("unknown bisect predicate %r" % predicate)


def bisect_fault_window(seed, predicate="violations",
                        runner=DEFAULT_RUNNER, checkpoint_dir=None,
                        every_events=1, **scenario_kwargs):
    """Find the minimal fault-event window reproducing ``predicate``.

    Returns the artifact dict.  ``checkpoint_dir`` (must be fresh, or
    absent) makes the final verification run write in-seed checkpoints
    so the artifact can name the one nearest before the window opens.
    Binary search assumes the usual monotone case (more admitted faults
    == at least as broken); whatever it converges to is then *verified*
    to reproduce before an artifact is emitted, so a non-monotone
    schedule can fail the bisection but never yield a false artifact.
    """
    module = importlib.import_module(runner)
    trials = 0

    def trial(skip, limit):
        nonlocal trials
        trials += 1
        window = module.fire_window(skip, limit)
        result = module.run_scenario(seed, window=window, **scenario_kwargs)
        return predicate_holds(predicate, result)

    baseline = module.run_scenario(seed, **scenario_kwargs)
    if not predicate_holds(predicate, baseline):
        raise CheckpointError(
            "predicate %r does not hold on seed %d without a window: "
            "nothing to bisect" % (predicate, seed))
    total = len(baseline.schedule.splitlines())

    # Smallest limit whose prefix window [0, limit) still reproduces.
    lo, hi = 0, total
    while lo < hi:
        mid = (lo + hi) // 2
        if trial(0, mid):
            hi = mid
        else:
            lo = mid + 1
    limit = lo
    # Largest skip for which [skip, limit) still reproduces.
    lo, hi = 0, limit
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if trial(mid, limit):
            lo = mid
        else:
            hi = mid - 1
    skip = lo

    # Verification run: the found window must reproduce, and (with a
    # store) leaves the checkpoints the artifact points into.
    manifest_name = None
    verify_kwargs = dict(scenario_kwargs)
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        if store.latest() is not None:
            raise CheckpointError(
                "bisect checkpoint dir %r is not fresh: resuming a "
                "windowed run from foreign checkpoints would not "
                "reproduce" % checkpoint_dir)
        verify_kwargs.update(checkpoint_dir=checkpoint_dir,
                             every_events=every_events)
    window = module.fire_window(skip, limit)
    result = module.run_scenario(seed, window=window, **verify_kwargs)
    if not predicate_holds(predicate, result):
        raise CheckpointError(
            "bisected window [%d, %d) does not reproduce %r: the fault "
            "schedule is not monotone under windowing; bisect by hand "
            "from the full schedule" % (skip, limit, predicate))
    if checkpoint_dir is not None:
        for name in store.manifest_names():
            manifest = store.load_manifest(name)
            if manifest.get("meta", {}).get("events", 0) <= skip:
                manifest_name = name

    return {
        "schema": ARTIFACT_SCHEMA,
        "seed": seed,
        "predicate": predicate,
        "runner": runner,
        "params": dict(scenario_kwargs),
        "total_events": total,
        "window": {"skip": skip, "limit": limit},
        "events": result.schedule.decode().splitlines(),
        "trials": trials,
        "checkpoint": {"dir": checkpoint_dir, "manifest": manifest_name},
    }


def write_artifact(artifact, path):
    """Persist a bisect artifact as canonical JSON (atomically)."""
    payload = (json.dumps(artifact, sort_keys=True, indent=1)
               + "\n").encode()
    atomic_write(path, payload)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint.bisect",
        description="binary-search a failing soak seed down to a "
                    "minimal (checkpoint, fault-window) repro")
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--predicate", default="violations",
                        help="'violations' or 'failed-op:<name>' "
                             "(default %(default)s)")
    parser.add_argument("--runner", default=DEFAULT_RUNNER,
                        help="dotted module exposing run_scenario/"
                             "fire_window (default %(default)s)")
    parser.add_argument("--hosts", type=int, default=3)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--nfaults", type=int, default=4)
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="fresh directory for the verification "
                             "run's in-seed checkpoints")
    parser.add_argument("--every-events", type=int, default=1,
                        metavar="N",
                        help="verification-run checkpoint cadence")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the artifact JSON here")
    args = parser.parse_args(argv)
    artifact = bisect_fault_window(
        args.seed, predicate=args.predicate, runner=args.runner,
        checkpoint_dir=args.checkpoint_dir,
        every_events=args.every_events,
        hosts=args.hosts, tenants=args.tenants, nfaults=args.nfaults)
    print("seed=%d predicate=%s window=[%d,%d) of %d events, %d trials"
          % (artifact["seed"], artifact["predicate"],
             artifact["window"]["skip"], artifact["window"]["limit"],
             artifact["total_events"], artifact["trials"]))
    for line in artifact["events"]:
        print("  " + line)
    if artifact["checkpoint"]["manifest"]:
        print("checkpoint: %s in %s" % (artifact["checkpoint"]["manifest"],
                                        artifact["checkpoint"]["dir"]))
    if args.out:
        write_artifact(artifact, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
