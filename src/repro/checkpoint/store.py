"""The content-addressed chunk store and its crash-safe commit protocol.

On-disk layout of one checkpoint directory::

    objects/ab/abcdef...        one immutable chunk, named by SHA-256
    manifests/ckpt-000007-1a2b3c4d.json
    LATEST                      self-validating pointer to one manifest

Chunks are immutable and deduplicated: ``put`` of bytes already present
writes nothing, which is what makes periodic checkpoints of a mostly
idle fleet cheap — only the pages that changed since the last
checkpoint cost new disk.

**Atomicity protocol** (the ``kill -9`` contract): every file becomes
visible only through ``os.replace`` of a fully written, fsynced
temporary in the same directory, followed by an fsync of the directory
itself.  A reader therefore only ever sees absent-or-complete files.
The ``LATEST`` pointer carries the manifest's name *and* its SHA-256,
so even a torn pointer (impossible under the protocol, simulated by
the truncate-fuzzing tests) is detected and ignored; the loader then
falls back to scanning ``manifests/`` for the highest-sequence manifest
that verifies, and **fails closed** if none does.  Torn state is never
loaded.

Wall-clock never enters any modelled quantity here: sequence numbers,
not timestamps, order manifests.
"""

import hashlib
import json
import os

from repro.common.errors import ReproError


class CheckpointError(ReproError):
    """A checkpoint could not be written, found, or verified."""


def _sha256(data):
    return hashlib.sha256(data).hexdigest()


def _fsync_dir(path):
    # POSIX requires the directory fsync for the rename to be durable;
    # platforms that refuse O_RDONLY fsync on directories lose only
    # durability, never atomicity.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path, data):
    """Write ``data`` to ``path`` so a crash leaves old-or-new, never torn."""
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory, ".tmp.%d.%s" % (os.getpid(),
                                                  os.path.basename(path)))
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(directory)


class ChunkStore:
    """Content-addressed immutable chunks under ``<root>/objects``."""

    def __init__(self, root):
        self.root = root
        self._objects = os.path.join(root, "objects")
        os.makedirs(self._objects, exist_ok=True)
        #: dedup/size tallies for ``BENCH_checkpoint.json``
        self.chunks_written = 0
        self.bytes_written = 0
        self.chunks_deduped = 0
        self.bytes_deduped = 0

    def _path(self, digest):
        return os.path.join(self._objects, digest[:2], digest)

    def put(self, data):
        """Store ``data``; returns its SHA-256 hex digest."""
        data = bytes(data)
        digest = _sha256(data)
        path = self._path(digest)
        if os.path.exists(path):
            self.chunks_deduped += 1
            self.bytes_deduped += len(data)
            return digest
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write(path, data)
        self.chunks_written += 1
        self.bytes_written += len(data)
        return digest

    def has(self, digest):
        return os.path.exists(self._path(digest))

    def get(self, digest):
        """The chunk's bytes; fails closed on absence or corruption."""
        try:
            with open(self._path(digest), "rb") as handle:
                data = handle.read()
        except OSError:
            raise CheckpointError("missing chunk %s" % digest)
        if _sha256(data) != digest:
            raise CheckpointError("corrupt chunk %s" % digest)
        return data

    def stats(self):
        """JSON-able dedup counters for bench artifacts."""
        return {
            "chunks_written": self.chunks_written,
            "bytes_written": self.bytes_written,
            "chunks_deduped": self.chunks_deduped,
            "bytes_deduped": self.bytes_deduped,
        }


class MemoryChunkStore:
    """Dict-backed :class:`ChunkStore` twin for tests and the oracle.

    Same interface and fail-closed semantics, no filesystem — so the
    restore-equivalence harness can run inside sharded work units
    without touching disk.
    """

    def __init__(self):
        self._chunks = {}
        self.chunks_written = 0
        self.bytes_written = 0
        self.chunks_deduped = 0
        self.bytes_deduped = 0

    def put(self, data):
        data = bytes(data)
        digest = _sha256(data)
        if digest in self._chunks:
            self.chunks_deduped += 1
            self.bytes_deduped += len(data)
            return digest
        self._chunks[digest] = data
        self.chunks_written += 1
        self.bytes_written += len(data)
        return digest

    def has(self, digest):
        return digest in self._chunks

    def get(self, digest):
        data = self._chunks.get(digest)
        if data is None:
            raise CheckpointError("missing chunk %s" % digest)
        return data

    def stats(self):
        return ChunkStore.stats(self)


#: LATEST pointer format: one line, schema-tagged and self-validating.
_LATEST_SCHEMA = "fidelius-checkpoint-latest/1"


class CheckpointStore(ChunkStore):
    """A chunk store plus sequence-numbered manifests and ``LATEST``."""

    def __init__(self, root):
        super().__init__(root)
        self._manifests = os.path.join(root, "manifests")
        os.makedirs(self._manifests, exist_ok=True)

    # -- commit ------------------------------------------------------------------

    def _next_sequence(self):
        highest = -1
        for name in os.listdir(self._manifests):
            parsed = self._parse_name(name)
            if parsed is not None:
                highest = max(highest, parsed)
        return highest + 1

    @staticmethod
    def _parse_name(name):
        # ckpt-<seq:06d>-<sha256 prefix>.json
        if not (name.startswith("ckpt-") and name.endswith(".json")):
            return None
        fields = name[:-len(".json")].split("-")
        if len(fields) != 3:
            return None
        try:
            return int(fields[1], 10)
        except ValueError:
            return None

    def commit(self, manifest):
        """Atomically persist ``manifest`` and repoint ``LATEST`` at it.

        The manifest document is canonical JSON (sorted keys); its file
        name embeds the sequence number and a payload-hash prefix, and
        the ``LATEST`` pointer records the full payload hash so torn or
        tampered manifests are detected before use.  Returns the
        manifest file name.
        """
        sequence = self._next_sequence()
        manifest = dict(manifest, sequence=sequence)
        payload = (json.dumps(manifest, sort_keys=True, indent=1)
                   + "\n").encode()
        digest = _sha256(payload)
        name = "ckpt-%06d-%s.json" % (sequence, digest[:8])
        atomic_write(os.path.join(self._manifests, name), payload)
        pointer = "%s %d %s %s\n" % (_LATEST_SCHEMA, sequence, name, digest)
        atomic_write(os.path.join(self.root, "LATEST"), pointer.encode())
        return name

    # -- load --------------------------------------------------------------------

    def manifest_names(self):
        """Well-formed manifest names, ascending sequence order."""
        names = [n for n in os.listdir(self._manifests)
                 if self._parse_name(n) is not None]
        return sorted(names, key=self._parse_name)

    def load_manifest(self, name):
        """Parse + verify one manifest by file name; fails closed."""
        try:
            with open(os.path.join(self._manifests, name), "rb") as handle:
                payload = handle.read()
        except OSError:
            raise CheckpointError("missing manifest %s" % name)
        return self._verify_payload(name, payload)

    @staticmethod
    def _verify_payload(name, payload, expect_digest=None):
        digest = _sha256(payload)
        if expect_digest is not None and digest != expect_digest:
            raise CheckpointError("manifest %s does not match its "
                                  "LATEST pointer hash" % name)
        if not name.startswith("ckpt-") or digest[:8] not in name:
            raise CheckpointError("manifest %s does not match its own "
                                  "content hash" % name)
        try:
            manifest = json.loads(payload.decode())
        except (UnicodeDecodeError, ValueError):
            raise CheckpointError("manifest %s is not valid JSON" % name)
        if not isinstance(manifest, dict):
            raise CheckpointError("manifest %s is not an object" % name)
        return manifest

    def _latest_from_pointer(self):
        try:
            with open(os.path.join(self.root, "LATEST"), "rb") as handle:
                pointer = handle.read()
        except OSError:
            return None
        fields = pointer.decode("utf-8", "replace").split()
        if len(fields) != 4 or fields[0] != _LATEST_SCHEMA:
            return None
        _, _seq, name, digest = fields
        try:
            with open(os.path.join(self._manifests, name), "rb") as handle:
                payload = handle.read()
            return self._verify_payload(name, payload, expect_digest=digest)
        except (OSError, CheckpointError):
            return None

    def latest(self):
        """The newest verifiable manifest, or None for an empty store.

        A valid ``LATEST`` pointer is authoritative; otherwise (absent,
        torn, or pointing at a torn manifest) the loader degrades to
        the newest manifest in ``manifests/`` that verifies — i.e. the
        previous checkpoint.  It never returns torn state.
        """
        manifest = self._latest_from_pointer()
        if manifest is not None:
            return manifest
        for name in reversed(self.manifest_names()):
            try:
                return self.load_manifest(name)
            except CheckpointError:
                continue
        return None

    def require_latest(self):
        manifest = self.latest()
        if manifest is None:
            raise CheckpointError(
                "no verifiable checkpoint under %s" % self.root)
        return manifest


def tree_stats(base_dir):
    """Size/dedup stats over every checkpoint store under ``base_dir``.

    Walks the tree (a resumable soak leaves one ``progress`` store plus
    one per-seed store), counting physical objects and manifests from
    the filesystem and *logical* chunk references from the manifests
    themselves.  ``dedup_ratio`` is logical references over physical
    objects: how many times the average chunk was reused instead of
    rewritten.  Disk truth, so it is meaningful across any number of
    crashed-and-resumed writer processes.
    """
    stats = {"stores": 0, "manifests": 0, "objects": 0, "object_bytes": 0,
             "logical_chunk_refs": 0, "dedup_ratio": 0.0}
    for dirpath, dirnames, _filenames in os.walk(base_dir):
        if "manifests" not in dirnames or "objects" not in dirnames:
            continue
        dirnames[:] = [d for d in dirnames
                       if d not in ("manifests", "objects")]
        store = CheckpointStore(dirpath)
        stats["stores"] += 1
        for name in os.listdir(store._objects):
            subdir = os.path.join(store._objects, name)
            for obj in os.listdir(subdir):
                stats["objects"] += 1
                stats["object_bytes"] += \
                    os.path.getsize(os.path.join(subdir, obj))
        for name in store.manifest_names():
            try:
                manifest = store.load_manifest(name)
            except CheckpointError:
                continue
            stats["manifests"] += 1
            stats["logical_chunk_refs"] += len(manifest.get("graph", ()))
            for record in manifest.get("machines", ()):
                stats["logical_chunk_refs"] += len(record.get("pages", ()))
    if stats["objects"]:
        stats["dedup_ratio"] = round(
            stats["logical_chunk_refs"] / stats["objects"], 3)
    return stats
