"""Deterministic checkpoint/restore for whole simulated machines.

ROADMAP item 5: serialize full :class:`~repro.hw.machine.Machine` /
:class:`~repro.cloud.Cloud` state — DRAM pages, per-ASID keys, VMCBs,
page tables, TLB and cache contents, cycle ledgers, Fidelius metadata —
into a content-addressed chunk store, and restore it bit-for-bit.

The package splits into three modules:

* :mod:`repro.checkpoint.store` — the content-addressed chunk store
  (SHA-256 over canonical bytes, page-granular dedup) and the
  crash-safe manifest/latest-pointer commit protocol;
* :mod:`repro.checkpoint.snapshot` — ``snapshot()`` / ``restore()``
  over live object graphs, with the ``fidelius-checkpoint/1`` manifest
  format and its fail-closed format-version and state-registry guards;
* :mod:`repro.checkpoint.bisect` — time-travel bisection of fault
  schedules: replay a failing seed from the nearest checkpoint and
  binary-search the fault-event window down to a minimal repro.

Layering: the package sits beside ``repro.eval`` (layer 7) — above the
fleet it serializes, below ``repro.faults`` so the chaos soak can
checkpoint itself mid-run.  The bisect engine reaches the soak only
through an ``importlib`` entry point supplied by its caller, never by
importing upward.
"""

from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    ChunkStore,
    MemoryChunkStore,
)
from repro.checkpoint.snapshot import (
    MANIFEST_SCHEMA,
    registry_fingerprint,
    restore,
    restore_latest,
    snapshot,
)

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "ChunkStore",
    "MANIFEST_SCHEMA",
    "MemoryChunkStore",
    "registry_fingerprint",
    "restore",
    "restore_latest",
    "snapshot",
]
