"""Physical memory and the physical-frame allocator.

The memory stores *exactly the bytes on the DRAM bus*: when the memory
controller encrypts a line, the ciphertext is what lives here.  The
``dump`` method therefore is the cold-boot / bus-snooping attack surface
of Section 6.1 — it returns whatever an attacker with physical access
would see.
"""

import contextlib

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.errors import PhysicalMemoryError
from repro.common.types import frame_addr, page_offset, pfn_of


class PhysicalMemory:
    """``frames`` pages of byte-addressable physical memory."""

    def __init__(self, frames):
        if frames <= 0:
            raise ValueError("need at least one physical frame")
        self.frames = frames
        #: total bytes; precomputed — the bounds checks run per access
        self.size = frames * PAGE_SIZE
        self._data = {}

    def _frame(self, pfn):
        if not 0 <= pfn < self.frames:
            raise PhysicalMemoryError("pfn %#x out of range" % pfn)
        frame = self._data.get(pfn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._data[pfn] = frame
        return frame

    def read(self, pa, length):
        """Raw read of ``length`` bytes at physical address ``pa``."""
        if length < 0:
            raise ValueError("negative length")
        if pa < 0 or pa + length > self.size:
            raise PhysicalMemoryError(
                "read [%#x, %#x) outside physical memory" % (pa, pa + length)
            )
        off = pa & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            # Dominant case — a cache line never crosses a page boundary.
            frame = self._data.get(pa >> PAGE_SHIFT)
            if frame is None:
                frame = self._frame(pa >> PAGE_SHIFT)
            return bytes(frame[off:off + length])
        out = bytearray()
        while length:
            frame = self._frame(pfn_of(pa))
            off = page_offset(pa)
            take = min(length, PAGE_SIZE - off)
            out.extend(frame[off:off + take])
            pa += take
            length -= take
        return bytes(out)

    def write(self, pa, data):
        """Raw write of ``data`` at physical address ``pa``."""
        length = len(data)
        if pa < 0 or pa + length > self.size:
            raise PhysicalMemoryError(
                "write [%#x, %#x) outside physical memory" % (pa, pa + length)
            )
        off = pa & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            frame = self._data.get(pa >> PAGE_SHIFT)
            if frame is None:
                frame = self._frame(pa >> PAGE_SHIFT)
            frame[off:off + length] = data
            return
        view = memoryview(data)
        while view.nbytes:
            frame = self._frame(pfn_of(pa))
            off = page_offset(pa)
            take = min(view.nbytes, PAGE_SIZE - off)
            frame[off:off + take] = view[:take]
            pa += take
            view = view[take:]

    def read_frame(self, pfn):
        return bytes(self._frame(pfn))

    def write_frame(self, pfn, data):
        if len(data) != PAGE_SIZE:
            raise ValueError("frame writes must be exactly one page")
        self._frame(pfn)[:] = data

    def zero_frame(self, pfn):
        self._frame(pfn)[:] = bytes(PAGE_SIZE)

    def read_u64(self, pa):
        return int.from_bytes(self.read(pa, 8), "little")

    def write_u64(self, pa, value):
        self.write(pa, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def dump(self):
        """Cold-boot snapshot: the raw contents of every touched frame."""
        return {pfn: bytes(frame) for pfn, frame in self._data.items()}

    # -- canonical state export (repro.checkpoint) --------------------------------

    def export_frames(self):
        """Touched frames as canonical ``(pfn, bytes)`` pairs, sorted.

        The checkpoint layer's page-granular view: each page is hashed
        and stored as one content-addressed chunk, so unchanged pages
        dedup across successive checkpoints.
        """
        return [(pfn, bytes(self._data[pfn])) for pfn in sorted(self._data)]

    def import_frames(self, pairs):
        """Replace the entire DRAM contents with ``(pfn, bytes)`` pairs."""
        data = {}
        for pfn, raw in pairs:
            if not 0 <= pfn < self.frames:
                raise PhysicalMemoryError(
                    "imported frame %#x out of range" % pfn)
            if len(raw) != PAGE_SIZE:
                raise PhysicalMemoryError(
                    "imported frame %#x is %d bytes, not one page"
                    % (pfn, len(raw)))
            data[pfn] = bytearray(raw)
        self._data = data

    @contextlib.contextmanager
    def detached_frames(self):
        """Temporarily detach the DRAM backing store.

        Yields the live ``{pfn: bytearray}`` dict while the memory
        object itself holds an empty one — so the checkpointer can
        pickle the surrounding object graph *without* the page payload
        (pages travel as content-addressed chunks instead), then the
        frames snap back on exit whatever happened in between.
        """
        detached = self._data
        self._data = {}
        try:
            yield detached
        finally:
            self._data = detached


class FrameAllocator:
    """A trivially simple free-list allocator over physical frames.

    The low ``reserved`` frames are never handed out (they hold boot
    structures placed at fixed addresses).  Ownership semantics live in
    the Fidelius page information table, not here: real Xen's allocator
    is equally oblivious, which is exactly why the PIT is needed.
    """

    def __init__(self, frames, reserved=0):
        if reserved >= frames:
            raise ValueError("reserving more frames than exist")
        self._free = list(range(frames - 1, reserved - 1, -1))
        self._allocated = set()
        self.reserved = reserved

    @property
    def free_count(self):
        return len(self._free)

    def alloc(self):
        if not self._free:
            raise PhysicalMemoryError("out of physical frames")
        pfn = self._free.pop()
        self._allocated.add(pfn)
        return pfn

    def alloc_many(self, count):
        return [self.alloc() for _ in range(count)]

    def free(self, pfn):
        if pfn not in self._allocated:
            raise PhysicalMemoryError("freeing frame %#x not allocated" % pfn)
        self._allocated.remove(pfn)
        self._free.append(pfn)

    def is_allocated(self, pfn):
        return pfn in self._allocated


def frame_va(pfn):
    """Host direct-map virtual address of a frame (identity map, VA==PA)."""
    return frame_addr(pfn)
