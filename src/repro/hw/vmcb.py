"""The virtual machine control block.

The VMCB is *the* central unencrypted attack surface of pre-SEV-ES
hardware (paper Section 2.2): it holds the guest instruction pointer,
control registers and the exit/entry control vectors, and the hypervisor
reads and writes it freely.  Fidelius responds by shadowing it across
every exit and verifying the hypervisor's edits against exit-reason
policies before VMRUN (Sections 4.2.1 and 5.1).

We model it as a structured record.  Byte-level attacks on the VMCB are
uninteresting to the paper (the hypervisor legitimately owns the bytes);
what matters is which *fields* change between exit and entry, so the
record exposes exactly field-level reads, writes, copies and diffs.
"""

from repro.common.types import ExitReason

#: Guest state saved/loaded by the hardware world switch.
SAVE_FIELDS = (
    "rip",
    "rsp",
    "rax",
    "cr0",
    "cr2",
    "cr3",
    "cr4",
    "efer",
    "rflags",
    "gdtr_base",
    "idtr_base",
)

#: Control fields owned by the hypervisor (entry/exit behaviour).
CONTROL_FIELDS = (
    "asid",
    "np_enable",
    "nested_cr3",
    "intercepts",
    "exitcode",
    "exitinfo1",
    "exitinfo2",
    "event_injection",
)

ALL_FIELDS = SAVE_FIELDS + CONTROL_FIELDS


class Vmcb:
    """One VMCB; each virtual CPU of a guest owns one."""

    def __init__(self, asid=0, nested_cr3=0):
        self._fields = {name: 0 for name in ALL_FIELDS}
        self._fields["asid"] = asid
        self._fields["nested_cr3"] = nested_cr3
        self._fields["np_enable"] = 1
        self._fields["intercepts"] = frozenset(
            {ExitReason.CPUID, ExitReason.HYPERCALL, ExitReason.IOIO,
             ExitReason.MSR, ExitReason.HLT}
        )
        #: Guest general-purpose registers other than rax.  Real hardware
        #: leaves these live in the CPU across an exit — that exposure is
        #: the register-stealing attack — but we also keep the storage
        #: here so VMRUN can reload a consistent guest context.
        self.guest_gprs = {}

    def read(self, name):
        if name not in self._fields:
            raise KeyError("no VMCB field %r" % name)
        return self._fields[name]

    def write(self, name, value):
        if name not in self._fields:
            raise KeyError("no VMCB field %r" % name)
        self._fields[name] = value

    def fields(self):
        return dict(self._fields)

    def copy(self):
        twin = Vmcb.__new__(Vmcb)
        twin._fields = dict(self._fields)
        twin.guest_gprs = dict(self.guest_gprs)
        return twin

    def diff(self, other):
        """Names of fields whose values differ from ``other``."""
        return {
            name
            for name in ALL_FIELDS
            if self._fields[name] != other._fields[name]
        }

    def restore_from(self, other, fields=None):
        names = fields if fields is not None else ALL_FIELDS
        for name in names:
            self._fields[name] = other._fields[name]

    def mask_fields(self, names, fill=0):
        """Zero the given fields (Fidelius masking before handing to Xen)."""
        for name in names:
            if name == "intercepts":
                self._fields[name] = frozenset()
            else:
                self._fields[name] = fill

    @property
    def exit_reason(self):
        return self._fields["exitcode"]

    def set_exit(self, reason, info1=0, info2=0):
        self._fields["exitcode"] = reason
        self._fields["exitinfo1"] = info1
        self._fields["exitinfo2"] = info2
