"""A simple software model of the translation lookaside buffer.

The TLB matters to the paper in two ways:

* the cost argument for the gate designs (Section 4.1.3): a CR3 switch
  flushes the whole TLB (AMD, no PCID in Xen 4.5), while the type 3 gate
  flushes exactly one entry (128 cycles) and the type 1 gate flushes
  nothing at all (``CR0.WP`` is consulted at access time, not cached);
* mapping freshness: after a type 3 gate withdraws its transient
  mapping, the stale entry must be flushed or the "unmapped" page would
  still be reachable.

Entries cache (vpn -> pfn, writable, user, nx, c_bit) per address-space
root.  ``CR0.WP`` is deliberately *not* part of the cached state.

Replacement is true LRU (a lookup hit refreshes the entry; the
least-recently-used entry across all roots is the victim).

Invalidation is *epoch-tagged*: each root carries a monotone epoch
counter, every cached entry remembers the epoch it was filled under,
and an entry whose epoch trails its root's is dead.  ``flush_root``
therefore runs in O(1) — charge the per-entry INVLPG cost for the
entries that were live, bump the epoch, zero the live count — and the
stale entries die lazily: a lookup that lands on one deletes it and
reports a miss, and the eviction scan pops them for free.  None of
this changes what is observable: hits, misses, evictions, cycle
charges, the live-entry fingerprint and ``len()`` all behave exactly
as if ``flush_root`` had walked and deleted the entries eagerly,
because stale entries never disturb the relative LRU order of live
ones.  (:meth:`new_incarnation` is the zero-cost variant used when a
guest is rebuilt by migration/restore — the new incarnation's TLB
starts cold without anyone paying INVLPG for entries the old host
owned; it is the hardware-side twin of ``GuestLedger.tlb_epoch``.)
"""

import hashlib
from collections import OrderedDict

from repro.common.constants import TLB_ENTRY_FLUSH_CYCLES


class Tlb:
    def __init__(self, cycles, capacity=1024):
        self.cycles = cycles
        self.capacity = capacity
        #: (root_pfn, vpn) -> (epoch, translation), in LRU order
        #: (oldest first).  Entries whose epoch trails their root's
        #: current epoch are stale: logically absent, physically
        #: reclaimed lazily.
        self._entries = OrderedDict()
        #: root_pfn -> current epoch; missing means epoch 0.
        self._epochs = {}
        #: root_pfn -> live (current-epoch) entry count; missing means 0.
        self._live = {}
        #: total live entries across all roots (== len() of the old
        #: eager-flush implementation).
        self._live_total = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def root_epoch(self, root_pfn):
        """The current epoch of one address-space root (0 if never
        flushed or re-incarnated)."""
        return self._epochs.get(root_pfn, 0)

    def lookup(self, root_pfn, vpn):
        key = (root_pfn, vpn)
        entry = self._entries.get(key)
        if entry is not None:
            epoch, translation = entry
            if epoch == self._epochs.get(root_pfn, 0):
                self.hits += 1
                self._entries.move_to_end(key)
                return translation
            # Stale: flushed under a previous epoch.  Reclaim now; the
            # live count was already zeroed at flush time.
            del self._entries[key]
        self.misses += 1
        return None

    def insert(self, root_pfn, vpn, translation):
        key = (root_pfn, vpn)
        epoch = self._epochs.get(root_pfn, 0)
        old = self._entries.get(key)
        if old is not None:
            if old[0] != epoch:
                # refilling a slot whose old content was flushed away
                self._live[root_pfn] = self._live.get(root_pfn, 0) + 1
                self._live_total += 1
            self._entries[key] = (epoch, translation)
            self._entries.move_to_end(key)
            return
        entries = self._entries
        while len(entries) >= self.capacity:
            (vroot, _vvpn), (vepoch, _vt) = entries.popitem(last=False)
            if vepoch == self._epochs.get(vroot, 0):
                # a live victim: this is the eviction the old eager
                # implementation would have performed
                self.evictions += 1
                self._live[vroot] -= 1
                self._live_total -= 1
                break
            # stale victim: already logically gone, reclaimed for free
        entries[key] = (epoch, translation)
        self._live[root_pfn] = self._live.get(root_pfn, 0) + 1
        self._live_total += 1

    def flush_page(self, root_pfn, vpn):
        """INVLPG: drop one entry; costs the measured 128 cycles."""
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES, "tlb-flush-entry")
        entry = self._entries.pop((root_pfn, vpn), None)
        if entry is not None and entry[0] == self._epochs.get(root_pfn, 0):
            self._live[root_pfn] -= 1
            self._live_total -= 1

    def flush_root(self, root_pfn):
        """Drop every entry of one address space; per-entry INVLPG cost
        (same 128-cycle figure as :meth:`flush_page`).

        O(1): the epoch bump retires every live entry at once; they are
        reclaimed lazily by lookups and the eviction scan."""
        live = self._live.get(root_pfn, 0)
        if not live:
            return
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES * live,
                           "tlb-flush-root")
        self._epochs[root_pfn] = self._epochs.get(root_pfn, 0) + 1
        del self._live[root_pfn]
        self._live_total -= live

    def new_incarnation(self, root_pfn):
        """Retire every entry of ``root_pfn`` *without* charging.

        Migration/restore rebuilds a guest whose TLB state lives on the
        old host: the new incarnation simply starts cold (the paper's
        model, mirrored by ``GuestLedger.tlb_epoch``), nobody executes
        INVLPG for it here.  Same epoch mechanics as :meth:`flush_root`,
        zero cycles."""
        self._epochs[root_pfn] = self._epochs.get(root_pfn, 0) + 1
        live = self._live.pop(root_pfn, 0)
        self._live_total -= live

    def flush_all(self, reason="tlb-flush-all"):
        """MOV CR3 semantics: everything goes; cost scales with occupancy."""
        self.cycles.charge(
            TLB_ENTRY_FLUSH_CYCLES * max(1, self._live_total // 8), reason
        )
        self._entries.clear()
        self._live.clear()
        self._live_total = 0
        # epochs stay: they are monotone per root across the TLB's life

    def _live_items(self):
        """Live entries in LRU order — the logical TLB content."""
        epochs = self._epochs
        for (root_pfn, vpn), (epoch, translation) in self._entries.items():
            if epoch == epochs.get(root_pfn, 0):
                yield (root_pfn, vpn), translation

    def state_fingerprint(self):
        """SHA-256 over the TLB's live entries (LRU order) and counters."""
        h = hashlib.sha256()
        for (root_pfn, vpn), translation in self._live_items():
            h.update(b"%d|%d|%r|" % (root_pfn, vpn, translation))
        h.update(b"counters|%d|%d|%d" % (self.hits, self.misses,
                                         self.evictions))
        return h.hexdigest()

    def root_index_sizes(self):
        """root_pfn -> live-entry count (perfbench/diagnostics)."""
        return {root: n for root, n in self._live.items() if n}

    def __len__(self):
        return self._live_total
