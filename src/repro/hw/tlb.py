"""A simple software model of the translation lookaside buffer.

The TLB matters to the paper in two ways:

* the cost argument for the gate designs (Section 4.1.3): a CR3 switch
  flushes the whole TLB (AMD, no PCID in Xen 4.5), while the type 3 gate
  flushes exactly one entry (128 cycles) and the type 1 gate flushes
  nothing at all (``CR0.WP`` is consulted at access time, not cached);
* mapping freshness: after a type 3 gate withdraws its transient
  mapping, the stale entry must be flushed or the "unmapped" page would
  still be reachable.

Entries cache (vpn -> pfn, writable, user, nx, c_bit) per address-space
root.  ``CR0.WP`` is deliberately *not* part of the cached state.
"""

from repro.common.constants import TLB_ENTRY_FLUSH_CYCLES


class Tlb:
    def __init__(self, cycles, capacity=1024):
        self.cycles = cycles
        self.capacity = capacity
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, root_pfn, vpn):
        entry = self._entries.get((root_pfn, vpn))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def insert(self, root_pfn, vpn, translation):
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[(root_pfn, vpn)] = translation

    def flush_page(self, root_pfn, vpn):
        """INVLPG: drop one entry; costs the measured 128 cycles."""
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES, "tlb-flush-entry")
        self._entries.pop((root_pfn, vpn), None)

    def flush_root(self, root_pfn):
        """Drop every entry of one address space; per-entry INVLPG cost
        (same 128-cycle figure as :meth:`flush_page`)."""
        stale = [key for key in self._entries if key[0] == root_pfn]
        if not stale:
            return
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES * len(stale),
                           "tlb-flush-root")
        for key in stale:
            del self._entries[key]

    def flush_all(self, reason="tlb-flush-all"):
        """MOV CR3 semantics: everything goes; cost scales with occupancy."""
        self.cycles.charge(
            TLB_ENTRY_FLUSH_CYCLES * max(1, len(self._entries) // 8), reason
        )
        self._entries.clear()

    def __len__(self):
        return len(self._entries)
