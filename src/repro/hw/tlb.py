"""A simple software model of the translation lookaside buffer.

The TLB matters to the paper in two ways:

* the cost argument for the gate designs (Section 4.1.3): a CR3 switch
  flushes the whole TLB (AMD, no PCID in Xen 4.5), while the type 3 gate
  flushes exactly one entry (128 cycles) and the type 1 gate flushes
  nothing at all (``CR0.WP`` is consulted at access time, not cached);
* mapping freshness: after a type 3 gate withdraws its transient
  mapping, the stale entry must be flushed or the "unmapped" page would
  still be reachable.

Entries cache (vpn -> pfn, writable, user, nx, c_bit) per address-space
root.  ``CR0.WP`` is deliberately *not* part of the cached state.

Replacement is true LRU (a lookup hit refreshes the entry; the
least-recently-used entry across all roots is the victim), and a
per-root secondary index makes ``flush_root`` O(entries of that root)
instead of a scan of the whole TLB.  Neither structure changes what is
charged: fills and hits are priced by the page-table walk that produced
them, and the flush costs below are per-entry exactly as before.
"""

import hashlib
from collections import OrderedDict

from repro.common.constants import TLB_ENTRY_FLUSH_CYCLES


class Tlb:
    def __init__(self, cycles, capacity=1024):
        self.cycles = cycles
        self.capacity = capacity
        #: (root_pfn, vpn) -> translation, in LRU order (oldest first).
        self._entries = OrderedDict()
        #: root_pfn -> set of vpns currently cached for that root.
        self._by_root = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, root_pfn, vpn):
        entry = self._entries.get((root_pfn, vpn))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end((root_pfn, vpn))
        return entry

    def insert(self, root_pfn, vpn, translation):
        key = (root_pfn, vpn)
        if key in self._entries:
            self._entries[key] = translation
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self._drop_from_root_index(victim)
            self.evictions += 1
        self._entries[key] = translation
        self._by_root.setdefault(root_pfn, set()).add(vpn)

    def _drop_from_root_index(self, key):
        root_pfn, vpn = key
        vpns = self._by_root[root_pfn]
        vpns.discard(vpn)
        if not vpns:
            del self._by_root[root_pfn]

    def flush_page(self, root_pfn, vpn):
        """INVLPG: drop one entry; costs the measured 128 cycles."""
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES, "tlb-flush-entry")
        if self._entries.pop((root_pfn, vpn), None) is not None:
            self._drop_from_root_index((root_pfn, vpn))

    def flush_root(self, root_pfn):
        """Drop every entry of one address space; per-entry INVLPG cost
        (same 128-cycle figure as :meth:`flush_page`).

        The per-root index makes this O(entries of ``root_pfn``); the
        old implementation scanned every entry in the TLB."""
        vpns = self._by_root.get(root_pfn)
        if not vpns:
            return
        self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES * len(vpns),
                           "tlb-flush-root")
        for vpn in vpns:
            del self._entries[(root_pfn, vpn)]
        del self._by_root[root_pfn]

    def flush_all(self, reason="tlb-flush-all"):
        """MOV CR3 semantics: everything goes; cost scales with occupancy."""
        self.cycles.charge(
            TLB_ENTRY_FLUSH_CYCLES * max(1, len(self._entries) // 8), reason
        )
        self._entries.clear()
        self._by_root.clear()

    def state_fingerprint(self):
        """SHA-256 over the TLB's entries (LRU order) and counters."""
        h = hashlib.sha256()
        for (root_pfn, vpn), translation in self._entries.items():
            h.update(b"%d|%d|%r|" % (root_pfn, vpn, translation))
        h.update(b"counters|%d|%d|%d" % (self.hits, self.misses,
                                         self.evictions))
        return h.hexdigest()

    def root_index_sizes(self):
        """root_pfn -> cached-entry count (perfbench/diagnostics)."""
        return {root: len(vpns) for root, vpns in self._by_root.items()}

    def __len__(self):
        return len(self._entries)
