"""The assembled board: memory, controller, CPU, DMA, allocator, RNG.

A :class:`Machine` is pure hardware.  The Xen substrate boots on top of
it (``repro.xen.hypervisor``), the SEV firmware attaches to its memory
controller (``repro.sev.firmware``), and Fidelius retrofits the booted
host (``repro.core.fidelius``).  The full assembled stack lives in
``repro.system``.
"""

import hashlib
import random

from repro.common.constants import (
    DEFAULT_MACHINE_FRAMES,
    PTE_NX,
    PTE_PRESENT,
    PTE_WRITABLE,
)
from repro.common import crypto
from repro.hw.cpu import Cpu
from repro.hw.cycles import CycleCounter
from repro.hw.dma import DmaEngine
from repro.hw.memctrl import MemoryController, ReferenceMemoryController
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.pagetable import PageTableWalker
from repro.hw.tlb import Tlb


class Machine:
    """One simulated host machine.

    ``reference_datapath=True`` assembles the board around
    :class:`ReferenceMemoryController` — the kept-simple encrypted data
    path — instead of the optimized controller.  Functional outputs and
    cycle ledgers are identical either way (the differential suite pins
    this); only wall-clock speed differs.  ``repro.eval.perfbench``
    boots one machine of each kind to measure the gap.
    """

    def __init__(self, frames=DEFAULT_MACHINE_FRAMES, seed=0x51EF,
                 reference_datapath=False, cache_lines=4096):
        self.rng = random.Random(seed)
        self.cycles = CycleCounter()
        self.memory = PhysicalMemory(frames)
        controller_cls = (ReferenceMemoryController if reference_datapath
                          else MemoryController)
        self.memctrl = controller_cls(self.memory, self.cycles,
                                      cache_lines=cache_lines)
        self.allocator = FrameAllocator(frames, reserved=1)
        self.walker = PageTableWalker(self.memory, alloc_frame=self.allocator.alloc)
        self.tlb = Tlb(self.cycles)
        self.cpu = Cpu(self.memctrl, self.tlb, self.cycles, self.memory)
        self.dma = DmaEngine(self.memctrl)
        self.host_root = None

    @property
    def frames(self):
        return self.memory.frames

    def build_host_address_space(self):
        """Boot-time construction of the host direct map (VA == PA).

        Every frame is mapped supervisor, writable and non-executable;
        the Xen boot code re-marks its text pages executable/read-only.
        Returns the root page-table PFN and loads it into CR3.
        """
        root = self.allocator.alloc()
        self.memory.zero_frame(root)
        for pfn in range(self.frames):
            va = pfn << 12
            self.walker.map(root, va, pfn, PTE_WRITABLE | PTE_NX | PTE_PRESENT)
        self.host_root = root
        self.cpu.cr3_root = root
        self.tlb.flush_all("boot")
        return root

    def host_table_pages(self):
        """All page-table-pages of the host address space (level, pfn)."""
        if self.host_root is None:
            raise RuntimeError("host address space not built yet")
        return list(self.walker.table_pages(self.host_root))

    def cold_boot_dump(self):
        """What a physical attacker sees: the raw DRAM contents."""
        return self.memory.dump()

    def state_digest(self):
        """SHA-256 over the machine's canonical architectural state.

        DRAM contents, the cycle ledger (total plus per-reason buckets
        and event counts), TLB entries/counters and the memory
        controller's key slots and plaintext cache all enter the hash.
        Two machines with equal digests are behaviorally
        indistinguishable to everything above the hardware layer —
        the lockstep criterion of the restore-equivalence oracle
        (``repro.checkpoint.oracle``).  RNG state is deliberately out:
        it is compared structurally (``rng.getstate()``), not hashed.
        """
        h = hashlib.sha256()
        for pfn, raw in self.memory.export_frames():
            h.update(b"frame|%d|" % pfn)
            h.update(raw)
        h.update(b"cycles|%d|" % self.cycles.total)
        for reason in sorted(self.cycles.by_reason):
            h.update(b"%s=%d,%d|" % (reason.encode(),
                                     self.cycles.by_reason[reason],
                                     self.cycles.events[reason]))
        h.update(b"tlb|" + self.tlb.state_fingerprint().encode())
        h.update(b"memctrl|" + self.memctrl.state_fingerprint().encode())
        return h.hexdigest()

    def perf_stats(self):
        """Simulator fast-path diagnostics (wall-clock only, never cycles).

        Future PRs regress against these via ``BENCH_simulator.json``:
        keystream-cache hit rates, write-allocate copies avoided, and
        the TLB's occupancy per address-space root.
        """
        return {
            "keystream_cache": crypto.keystream_cache_stats(),
            "memctrl": self.memctrl.perf_counters(),
            "tlb": {
                "hits": self.tlb.hits,
                "misses": self.tlb.misses,
                "evictions": self.tlb.evictions,
                "entries": len(self.tlb),
                "roots": len(self.tlb.root_index_sizes()),
                "root_index_sizes": self.tlb.root_index_sizes(),
            },
        }
