"""The CPU model: modes, control registers, privileged instructions.

The CPU is policy-free hardware.  Fidelius's power comes exclusively
from two hardware behaviours modelled here:

* every software memory access is translated through the current
  address space, so *mappings* (and ``CR0.WP``) decide what the
  hypervisor can touch — faults are dispatched to the registered
  handler, as through a fault vector;
* every privileged-instruction execution performs a real instruction
  fetch: the opcode bytes must be present, executable and actually
  contain the encoding — so unmapping the single VMRUN / ``mov CR3``
  instance (type 3 gates) or hooking the checking loop physically
  adjacent to a monopolized instruction (type 2 gates) is enforceable.

GPR semantics follow AMD-V: VMRUN/VMEXIT save and load only RAX, RIP
and RSP through the VMCB; the other guest GPRs stay live in the CPU
across an exit.  That exposure *is* the register-stealing attack of
Section 2.2, and the reason Fidelius shadows and masks the register
file at the exit boundary.
"""

from repro.common.constants import (
    CR0_PG,
    CR0_WP,
    CR4_SMEP,
    EFER_NXE,
    EFER_SVME,
    HOST_ASID,
    MSR_EFER,
    TLB_MISS_WALK_CYCLES,
)
from repro.common.errors import GateViolation, PageFault, ReproError
from repro.common.types import Access, CpuMode, PRIV_OPCODES, PrivOp
from repro.hw.pagetable import PageTableWalker

GPR_NAMES = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)


class RegisterFile:
    """The sixteen general-purpose registers."""

    def __init__(self):
        self._regs = {name: 0 for name in GPR_NAMES}

    def __getitem__(self, name):
        return self._regs[name]

    def __setitem__(self, name, value):
        if name not in self._regs:
            raise KeyError("no register %r" % name)
        self._regs[name] = value

    def copy(self):
        twin = RegisterFile()
        twin._regs = dict(self._regs)
        return twin

    def load_from(self, other):
        self._regs = dict(other._regs)

    def mask_except(self, keep=()):
        """Zero every register not in ``keep`` (Fidelius masking)."""
        for name in self._regs:
            if name not in keep:
                self._regs[name] = 0

    def diff(self, other):
        return {name for name in GPR_NAMES if self._regs[name] != other._regs[name]}

    def as_dict(self):
        return dict(self._regs)


class Cpu:
    """One logical processor."""

    def __init__(self, memctrl, tlb, cycles, memory):
        self.memctrl = memctrl
        self.tlb = tlb
        self.cycles = cycles
        self.mode = CpuMode.HOST
        self.regs = RegisterFile()
        self.cr0 = CR0_PG | CR0_WP
        self.cr3_root = 0
        self.cr4 = 0
        self.efer = EFER_NXE
        self.gdt_base = 0
        self.idt_base = 0
        self.interrupts_enabled = True
        self.current_stack = "xen"
        self.current_asid = HOST_ASID
        #: Set by gates while the CPU runs inside Fidelius's context;
        #: checking-loop hooks consult it to tell gated from hijacked
        #: executions of monopolized instructions.
        self.gate_active = None
        #: Registered by Fidelius: called for host-mode faults with
        #: (fault, op) where op is ("write", va, data) or ("read", va, n).
        #: Returns True if the access was emulated/absorbed.
        self.fault_handler = None
        #: Checking-loop logic installed around monopolized instructions
        #: (type 2 gates): {PrivOp: callable(cpu, op, arg, old_state)}.
        self.priv_post_hooks = {}
        #: Where each checking loop physically lives: the hook for an op
        #: only runs when the instruction executes at its monopoly site
        #: (None = anywhere).  Together with the binary-scan monopoly,
        #: every *reachable* encoding is a guarded one; re-planting a
        #: stray copy (skipping the rewrite) genuinely re-opens the hole.
        self.priv_hook_sites = {}
        self._walker = PageTableWalker(memory)
        self._hsave = None

    # -- control-register helpers ------------------------------------------------

    @property
    def wp_enabled(self):
        return bool(self.cr0 & CR0_WP)

    @property
    def smep_enabled(self):
        return bool(self.cr4 & CR4_SMEP)

    @property
    def nxe_enabled(self):
        return bool(self.efer & EFER_NXE)

    @property
    def svme_enabled(self):
        return bool(self.efer & EFER_SVME)

    # -- host-mode virtual memory access ------------------------------------------

    def _translate(self, va, access):
        vpn = va >> 12
        translation = self.tlb.lookup(self.cr3_root, vpn)
        if translation is None:
            self.cycles.charge(TLB_MISS_WALK_CYCLES, "pt-walk")
            translation = self._walker.permissions(self.cr3_root, va)
            self.tlb.insert(self.cr3_root, vpn, translation)
        PageTableWalker._check_permissions(
            va,
            access,
            translation.writable,
            translation.user,
            translation.nx,
            wp=self.wp_enabled,
            smep=self.smep_enabled,
            nxe=self.nxe_enabled,
        )
        page_pa = translation.pa & ~0xFFF
        return type(translation)(
            page_pa | (va & 0xFFF), translation.writable,
            translation.user, translation.nx, translation.c_bit,
        )

    def load(self, va, length, user=False):
        """Host-mode virtual read through the current address space."""
        try:
            translation = self._translate(va, Access(user=user))
        except PageFault as fault:
            if self.fault_handler and self.fault_handler(fault, ("read", va, length)):
                return bytes(length)
            raise
        return self.memctrl.read(
            translation.pa, length, c_bit=translation.c_bit, asid=self.current_asid
        )

    def store(self, va, data, user=False):
        """Host-mode virtual write through the current address space."""
        try:
            translation = self._translate(va, Access(write=True, user=user))
        except PageFault as fault:
            if self.fault_handler and self.fault_handler(fault, ("write", va, bytes(data))):
                return
            raise
        self.memctrl.write(
            translation.pa, data, c_bit=translation.c_bit, asid=self.current_asid
        )

    def load_u64(self, va):
        return int.from_bytes(self.load(va, 8), "little")

    def store_u64(self, va, value):
        self.store(va, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def _fetch(self, va, length):
        """Instruction fetch: byte-by-byte so page-crossing works.

        Fetches hit the instruction cache in any realistic run of the
        gate paths, so they charge no DRAM latency; the permission check
        per byte is what matters architecturally.
        """
        out = bytearray()
        for i in range(length):
            translation = self._translate(va + i, Access.fetch())
            byte = self.memctrl.memory.read(translation.pa, 1)
            if translation.c_bit:
                byte = self.memctrl.read(translation.pa, 1,
                                         c_bit=True, asid=self.current_asid)
            out.extend(byte)
        return bytes(out)

    def can_fetch(self, va):
        try:
            self._translate(va, Access.fetch())
            return True
        except PageFault:
            return False

    # -- privileged instructions -----------------------------------------------------

    def exec_privileged(self, op, arg, rip):
        """Execute privileged instruction ``op`` located at ``rip``.

        The fetch verifies that the encoding bytes really live at
        ``rip`` in the current address space (mapped + executable).
        After the architectural effect is applied, the checking-loop
        hook for ``op`` runs, if installed; a :class:`GateViolation`
        from the hook rolls the effect back before propagating — the
        paper's "invalid operations will be detected and prevented".
        """
        opcode = PRIV_OPCODES[op]
        fetched = self._fetch(rip, len(opcode))
        if fetched != opcode:
            raise PageFault(
                rip, execute=True, present=True,
                message="no %s encoding at %#x" % (op.value, rip),
            )
        old = self._save_priv_state(op)
        self._apply_priv(op, arg)
        if op is PrivOp.MOV_CR3:
            # The very next instruction is fetched in the *new* address
            # space; if its byte is unmapped there, execution cannot
            # continue (the paper's end-of-page placement subtlety).
            next_va = rip + len(opcode)
            try:
                self._translate(next_va, Access.fetch())
            except PageFault:
                self._restore_priv_state(op, old)
                raise PageFault(
                    next_va, execute=True,
                    message="instruction after mov CR3 unreachable in new space",
                )
        hook = self.priv_post_hooks.get(op)
        site = self.priv_hook_sites.get(op)
        if hook is not None and (site is None or site == rip):
            try:
                hook(self, op, arg, old)
            except GateViolation:
                self._restore_priv_state(op, old)
                raise

    def _save_priv_state(self, op):
        return {
            "cr0": self.cr0, "cr3": self.cr3_root, "cr4": self.cr4,
            "efer": self.efer, "gdt": self.gdt_base, "idt": self.idt_base,
        }

    def _restore_priv_state(self, op, old):
        self.cr0 = old["cr0"]
        if self.cr3_root != old["cr3"]:
            self.cr3_root = old["cr3"]
            self.tlb.flush_all("mov-cr3-rollback")
        self.cr4 = old["cr4"]
        self.efer = old["efer"]
        self.gdt_base = old["gdt"]
        self.idt_base = old["idt"]

    def _apply_priv(self, op, arg):
        if op is PrivOp.MOV_CR0:
            self.cr0 = arg
        elif op is PrivOp.MOV_CR3:
            self.cr3_root = arg
            self.tlb.flush_all("mov-cr3")
        elif op is PrivOp.MOV_CR4:
            self.cr4 = arg
        elif op is PrivOp.WRMSR:
            msr, value = arg
            if msr == MSR_EFER:
                self.efer = value
        elif op is PrivOp.LGDT:
            self.gdt_base = arg
        elif op is PrivOp.LIDT:
            self.idt_base = arg
        elif op is PrivOp.VMRUN:
            raise ReproError("VMRUN must go through Cpu.vmrun")
        else:
            raise ReproError("unknown privileged op %s" % op)

    # -- world switches ------------------------------------------------------------

    def vmrun(self, vmcb, rip):
        """VMRUN: fetch-check the instruction, then enter guest mode.

        Only RAX/RIP/RSP and control state come from the VMCB; the other
        GPRs enter the guest exactly as they currently sit in the CPU
        (software — Xen or Fidelius — must have restored them).
        """
        if not self.svme_enabled:
            raise ReproError("VMRUN with EFER.SVME clear")
        if self.mode is not CpuMode.HOST:
            raise ReproError("VMRUN outside host mode")
        opcode = PRIV_OPCODES[PrivOp.VMRUN]
        fetched = self._fetch(rip, len(opcode))
        if fetched != opcode:
            raise PageFault(rip, execute=True, present=True,
                            message="no VMRUN encoding at %#x" % rip)
        hook = self.priv_post_hooks.get(PrivOp.VMRUN)
        if hook is not None:
            hook(self, PrivOp.VMRUN, vmcb, None)
        self._hsave = {
            "cr0": self.cr0, "cr3": self.cr3_root, "cr4": self.cr4,
            "efer": self.efer, "rsp": self.regs["rsp"],
        }
        self.mode = CpuMode.GUEST
        self.current_asid = vmcb.read("asid")
        self.regs["rax"] = vmcb.read("rax")
        self.regs["rsp"] = vmcb.read("rsp")

    def vmexit(self, vmcb, reason, info1=0, info2=0):
        """Hardware exit: save guest save-area state, restore host control
        state — and leave the guest GPRs live in the register file."""
        if self.mode is not CpuMode.GUEST:
            raise ReproError("VMEXIT outside guest mode")
        vmcb.set_exit(reason, info1, info2)
        vmcb.write("rax", self.regs["rax"])
        vmcb.write("rsp", self.regs["rsp"])
        self.mode = CpuMode.HOST
        self.current_asid = HOST_ASID
        hsave = self._hsave or {}
        self.cr0 = hsave.get("cr0", self.cr0)
        if "cr3" in hsave and hsave["cr3"] != self.cr3_root:
            self.cr3_root = hsave["cr3"]
        self.cr4 = hsave.get("cr4", self.cr4)
        self.efer = hsave.get("efer", self.efer)
