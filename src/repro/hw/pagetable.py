"""Four-level page tables and the hardware walker.

Used in three places, with different word-access callbacks:

* the host address space (Xen + Fidelius): raw physical reads, because
  host page tables are not encrypted in our configurations;
* the guest's own page tables (GVA -> GPA): accesses composed by the
  domain layer through the NPT and the guest's memory-encryption key;
* the nested page tables (GPA -> HPA): raw physical reads.

The walker itself is pure hardware: it enforces PRESENT / WRITABLE /
USER / NX plus the ``CR0.WP`` and ``CR4.SMEP`` semantics, and reports
the leaf C-bit.  It does **not** enforce any Fidelius policy — policies
act on who may *write* the page-table-pages, which is exactly the
paper's non-bypassable isolation design.
"""

from dataclasses import dataclass

from repro.common.constants import (
    ENTRIES_PER_TABLE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_C_BIT,
    PTE_NX,
    PTE_PFN_MASK,
    PTE_PRESENT,
    PTE_SIZE,
    PTE_USER,
    PTE_WRITABLE,
    PT_LEVELS,
    VA_BITS,
)
from repro.common.errors import PageFault
from repro.common.types import Access, frame_addr


def _index(va, level):
    return (va >> (PAGE_SHIFT + 9 * (level - 1))) & (ENTRIES_PER_TABLE - 1)


def entry_pfn(entry):
    return (entry & PTE_PFN_MASK) >> PAGE_SHIFT


def make_entry(pfn, flags):
    return (pfn << PAGE_SHIFT) | flags


@dataclass(frozen=True)
class Translation:
    """Result of a successful walk."""

    pa: int
    writable: bool
    user: bool
    nx: bool
    c_bit: bool


class PageTableWalker:
    """Walks and edits page tables rooted at a given frame."""

    def __init__(self, memory, alloc_frame=None, read_word=None, write_word=None):
        self._memory = memory
        self._alloc_frame = alloc_frame
        self._read_word = read_word or memory.read_u64
        self._write_word = write_word or memory.write_u64

    # -- translation ---------------------------------------------------------

    def translate(self, root_pfn, va, access=Access.read(),
                  wp=True, smep=False, nxe=True):
        """Translate ``va``; raises :class:`PageFault` like the hardware.

        The walk is the slot-path fast loop of the simulator: the word
        reader is bound once, the per-level slot address is computed
        with shifts only, and the permission bits are folded as ints —
        the semantics are exactly the general loop it replaced.
        """
        if not 0 <= va < (1 << VA_BITS):
            raise PageFault(va, access.write, access.execute, access.user,
                            message="non-canonical virtual address %#x" % va)
        read_word = self._read_word
        table_pfn = root_pfn
        flags_and = PTE_WRITABLE | PTE_USER   # folded WRITABLE/USER bits
        nx_or = 0                             # folded NX bit
        entry = 0
        shift = PAGE_SHIFT + 9 * (PT_LEVELS - 1)
        for _ in range(PT_LEVELS):
            slot = (va >> shift) & (ENTRIES_PER_TABLE - 1)
            entry = read_word((table_pfn << PAGE_SHIFT) + slot * PTE_SIZE)
            if not entry & PTE_PRESENT:
                raise PageFault(va, access.write, access.execute, access.user,
                                present=False)
            flags_and &= entry
            nx_or |= entry & PTE_NX
            table_pfn = (entry & PTE_PFN_MASK) >> PAGE_SHIFT
            shift -= 9
        writable = bool(flags_and & PTE_WRITABLE)
        user = bool(flags_and & PTE_USER)
        nx = bool(nx_or)
        c_bit = bool(entry & PTE_C_BIT)
        self._check_permissions(va, access, writable, user, nx, wp, smep, nxe)
        pa = (table_pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        return Translation(pa, writable, user, nx, c_bit)

    @staticmethod
    def _check_permissions(va, access, writable, user, nx, wp, smep, nxe):
        if access.user and not user:
            raise PageFault(va, access.write, access.execute, True, present=True)
        if access.write and not writable:
            if access.user or wp:
                raise PageFault(va, True, False, access.user, present=True)
        if access.execute:
            if nx and nxe:
                raise PageFault(va, False, True, access.user, present=True)
            if smep and user and not access.user:
                raise PageFault(va, False, True, False, present=True,
                                message="SMEP: supervisor fetch of user page")

    def permissions(self, root_pfn, va):
        """Translation without any permission check (inspection helper)."""
        return self.translate(root_pfn, va, Access.read(), wp=False)

    # -- construction and edits ------------------------------------------------

    def map(self, root_pfn, va, pfn, flags):
        """Install a leaf mapping, allocating intermediate tables as needed.

        Returns the list of newly allocated page-table-page PFNs so the
        caller (boot code or Fidelius) can classify them in the PIT.
        """
        new_tables = []
        table_pfn = root_pfn
        for level in range(PT_LEVELS, 1, -1):
            entry_pa = frame_addr(table_pfn) + _index(va, level) * PTE_SIZE
            entry = self._read_word(entry_pa)
            if not entry & PTE_PRESENT:
                if self._alloc_frame is None:
                    raise PageFault(va, message="no allocator to grow tables")
                child = self._alloc_frame()
                self._memory.zero_frame(child)
                new_tables.append((level - 1, child))
                self._write_word(
                    entry_pa, make_entry(child, PTE_PRESENT | PTE_WRITABLE | PTE_USER)
                )
                table_pfn = child
            else:
                table_pfn = entry_pfn(entry)
        leaf_pa = frame_addr(table_pfn) + _index(va, 1) * PTE_SIZE
        self._write_word(leaf_pa, make_entry(pfn, flags | PTE_PRESENT))
        return new_tables

    def unmap(self, root_pfn, va):
        leaf_pa = self.entry_pa(root_pfn, va)
        entry = self._read_word(leaf_pa)
        self._write_word(leaf_pa, 0)
        return entry

    def entry_pa(self, root_pfn, va, level=1):
        """Physical address of the entry for ``va`` at ``level``.

        This is what lets *software* edit an entry through its own mapped
        view of the page-table-page — and what lets Fidelius fault such
        edits when the page-table-pages are write-protected.
        """
        table_pfn = root_pfn
        for cur in range(PT_LEVELS, level, -1):
            entry_pa = frame_addr(table_pfn) + _index(va, cur) * PTE_SIZE
            entry = self._read_word(entry_pa)
            if not entry & PTE_PRESENT:
                raise PageFault(va, present=False,
                                message="no level-%d table for %#x" % (cur - 1, va))
            table_pfn = entry_pfn(entry)
        return frame_addr(table_pfn) + _index(va, level) * PTE_SIZE

    def read_entry(self, root_pfn, va, level=1):
        return self._read_word(self.entry_pa(root_pfn, va, level))

    def write_entry(self, root_pfn, va, value, level=1):
        """Raw (hardware/boot-time) entry write — not subject to WP."""
        self._write_word(self.entry_pa(root_pfn, va, level), value)

    def set_flags(self, root_pfn, va, set_mask=0, clear_mask=0):
        leaf_pa = self.entry_pa(root_pfn, va)
        entry = self._read_word(leaf_pa)
        if not entry & PTE_PRESENT:
            raise PageFault(va, present=False)
        self._write_word(leaf_pa, (entry | set_mask) & ~clear_mask)

    def is_mapped(self, root_pfn, va):
        try:
            self.translate(root_pfn, va, Access.read(), wp=False)
            return True
        except PageFault:
            return False

    # -- enumeration ------------------------------------------------------------

    def table_pages(self, root_pfn):
        """All page-table-page PFNs reachable from ``root_pfn``, with levels.

        Fidelius write-protects every one of these at boot (Section 4.1.1).
        Yields (level, pfn) pairs, the root included at level 4.
        """
        yield PT_LEVELS, root_pfn
        yield from self._table_pages_below(root_pfn, PT_LEVELS)

    def _table_pages_below(self, table_pfn, level):
        if level == 1:
            return
        for i in range(ENTRIES_PER_TABLE):
            entry = self._read_word(frame_addr(table_pfn) + i * PTE_SIZE)
            if not entry & PTE_PRESENT:
                continue
            child = entry_pfn(entry)
            yield level - 1, child
            yield from self._table_pages_below(child, level - 1)

    def leaf_mappings(self, root_pfn):
        """Yield (va, entry) for every present leaf mapping."""
        yield from self._leaves(root_pfn, PT_LEVELS, 0)

    def _leaves(self, table_pfn, level, va_prefix):
        shift = PAGE_SHIFT + 9 * (level - 1)
        for i in range(ENTRIES_PER_TABLE):
            entry = self._read_word(frame_addr(table_pfn) + i * PTE_SIZE)
            if not entry & PTE_PRESENT:
                continue
            va = va_prefix | (i << shift)
            if level == 1:
                yield va, entry
            else:
                yield from self._leaves(entry_pfn(entry), level - 1, va)
