"""DMA engine: the device-side (driver-domain) view of physical memory.

SEV's design point (paper Section 2.2): DMA cannot operate on encrypted
guest memory — the engine moves raw bus bytes without any key, so an
encrypted page read via DMA yields ciphertext, and a DMA write lands
raw bytes that decrypt to garbage under the guest key.  This is why
guests must use unencrypted shared pages for I/O, which in turn is the
confidentiality hole Fidelius's I/O protection closes (Section 4.3.5).
"""

from repro.common.constants import PAGE_SIZE
from repro.common.types import frame_addr


class DmaEngine:
    """Models device DMA as issued by the (untrusted) driver domain."""

    def __init__(self, memctrl):
        self._memctrl = memctrl
        self.transfers = 0

    def read(self, pa, length):
        self.transfers += 1
        return self._memctrl.dma_read(pa, length)

    def write(self, pa, data):
        self.transfers += 1
        self._memctrl.dma_write(pa, data)

    def read_frame(self, pfn):
        return self.read(frame_addr(pfn), PAGE_SIZE)

    def write_frame(self, pfn, data):
        if len(data) != PAGE_SIZE:
            raise ValueError("DMA frame writes must be one full page")
        self.write(frame_addr(pfn), data)
