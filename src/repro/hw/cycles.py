"""Cycle accounting.

Every simulated hardware and Fidelius operation charges cycles to one
shared counter, attributed to a reason string.  The micro benchmarks of
Section 7.2 read these attributions directly; the macro model sums them.
"""

from collections import defaultdict


class CycleCounter:
    """A monotonically increasing cycle counter with per-reason buckets."""

    def __init__(self):
        self.total = 0
        self.by_reason = defaultdict(int)
        self.events = defaultdict(int)

    def charge(self, cycles, reason="unattributed"):
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.total += cycles
        self.by_reason[reason] += cycles
        self.events[reason] += 1

    def charge_many(self, cycles, reason, count):
        """``count`` identical charges in one call.

        The ledger is order-free (sums and event tallies, no sequence),
        so this is *defined* to leave ``total``/``by_reason``/``events``
        exactly as ``count`` individual :meth:`charge` calls would —
        the identity the batched memory-controller paths rely on to
        stay cycle-equal with the per-access reference loop.
        """
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        if count < 0:
            raise ValueError("cannot charge a negative event count")
        if count == 0:
            return
        self.total += cycles * count
        self.by_reason[reason] += cycles * count
        self.events[reason] += count

    def snapshot(self):
        """An immutable view usable for before/after deltas."""
        return CycleSnapshot(self.total, dict(self.by_reason), dict(self.events))

    def since(self, snapshot):
        """Cycles elapsed since ``snapshot`` was taken."""
        return self.total - snapshot.total

    def reset(self):
        self.total = 0
        self.by_reason.clear()
        self.events.clear()


class CycleSnapshot:
    """Frozen copy of a :class:`CycleCounter` at one point in time."""

    def __init__(self, total, by_reason, events):
        self.total = total
        self.by_reason = by_reason
        self.events = events

    def delta(self, counter):
        """Per-reason cycles accumulated on ``counter`` since this snapshot."""
        out = {}
        for reason, cycles in counter.by_reason.items():
            diff = cycles - self.by_reason.get(reason, 0)
            if diff:
                out[reason] = diff
        return out

    def event_delta(self, counter):
        out = {}
        for reason, count in counter.events.items():
            diff = count - self.events.get(reason, 0)
            if diff:
                out[reason] = diff
        return out
