"""Simulated AMD-like hardware substrate.

This package stands in for the paper's testbed hardware (8-core AMD
Ryzen with AMD-V and the SME/SEV memory-controller encryption engine).
It provides:

* :class:`~repro.hw.memory.PhysicalMemory` — paged physical memory with a
  raw "cold boot" dump surface;
* :class:`~repro.hw.memctrl.MemoryController` — the on-die AES engine
  with per-ASID key slots, the C-bit data path, a physical-address
  indexed *plaintext* cache (the leak channel of the inter-VM remapping
  attack), and a DMA port that bypasses the keys;
* :class:`~repro.hw.pagetable.PageTableWalker` — a 4-level x86-style
  walker honouring WRITABLE / USER / NX / C-bit and ``CR0.WP``;
* :class:`~repro.hw.cpu.Cpu` — host/guest modes, control registers,
  privileged-instruction execution with fetch checks, fault dispatch and
  VMRUN/VMEXIT world switches against a :class:`~repro.hw.vmcb.Vmcb`;
* :class:`~repro.hw.machine.Machine` — the assembled board.
"""

from repro.hw.cpu import Cpu, RegisterFile
from repro.hw.cycles import CycleCounter
from repro.hw.dma import DmaEngine
from repro.hw.machine import Machine
from repro.hw.memctrl import MemoryController
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.pagetable import PageTableWalker, Translation
from repro.hw.tlb import Tlb
from repro.hw.vmcb import Vmcb

__all__ = [
    "Cpu",
    "RegisterFile",
    "CycleCounter",
    "DmaEngine",
    "Machine",
    "MemoryController",
    "FrameAllocator",
    "PhysicalMemory",
    "PageTableWalker",
    "Translation",
    "Tlb",
    "Vmcb",
]
