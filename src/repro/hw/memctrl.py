"""The memory controller with the SME/SEV AES engine.

Faithful structural properties (paper Sections 2.1, 2.2, 6.1, 6.2):

* Keys live in *slots* indexed by ASID (slot 0 is the host SME key).
  They are installed only by the SEV firmware's ACTIVATE command; no
  software ever reads a slot back.
* Encryption is deterministic and tweaked by the physical cache-line
  address.  Ciphertext replayed at the same physical address decrypts to
  the stale plaintext (the replay attack works at this layer);
  ciphertext moved elsewhere decrypts to garbage.
* There is **no integrity**: a wrong key or corrupted ciphertext just
  yields garbage plaintext (Section 8 suggests a Bonsai Merkle Tree).
* The cache holds *plaintext* lines indexed purely by physical address.
  An encrypted read that hits the cache is served the plaintext even if
  the reader's ASID (and hence key) differs — this is the cache channel
  behind the inter-VM remapping attack of Section 6.2.
* The DMA port moves raw bus bytes and never touches the keys, so DMA
  from the driver domain sees ciphertext of protected pages (and this is
  why the PV I/O path needs the Fidelius I/O encoding of Section 4.3.5).
"""

from collections import OrderedDict

from repro.common import crypto
from repro.common.constants import (
    CACHE_LINE,
    CACHE_LINE_SHIFT,
    ENC_LINE_EXTRA_CYCLES,
    HOST_ASID,
    L1_HIT_CYCLES,
    LINE_TRANSFER_CYCLES,
    MAX_ASID,
)
from repro.common.errors import PhysicalMemoryError, ReproError


class KeySlotError(ReproError):
    """Access with an ASID whose key slot is empty."""


def line_tweak(line_pa):
    """The position tweak: the physical address of the cache line."""
    return line_pa.to_bytes(8, "little")


def split_lines(pa, length):
    """Split [pa, pa+length) into (line_pa, offset_in_line, chunk_len)."""
    if length < 0:
        raise PhysicalMemoryError("negative region length %d" % length)
    pieces = []
    cursor = pa
    remaining = length
    while remaining:
        line_pa = (cursor >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        off = cursor - line_pa
        take = min(remaining, CACHE_LINE - off)
        pieces.append((line_pa, off, take))
        cursor += take
        remaining -= take
    return pieces


def encrypt_region(key, pa, plaintext):
    """Ciphertext bytes as they would sit on DRAM at ``pa`` under ``key``.

    Shared by the memory controller and the SEV firmware (which holds
    guest keys directly and transforms memory images in place).
    """
    out = bytearray()
    view = memoryview(plaintext)
    for line_pa, off, take in split_lines(pa, len(plaintext)):
        chunk = bytes(view[:take])
        view = view[take:]
        out.extend(crypto.xex_encrypt(key, line_tweak(line_pa), chunk, offset=off))
    return bytes(out)


#: The keystream construction is an involution, so decryption is identical.
decrypt_region = encrypt_region


class MemoryController:
    """Byte-addressable front end of :class:`PhysicalMemory` with crypto."""

    def __init__(self, memory, cycles, cache_lines=4096):
        self.memory = memory
        self.cycles = cycles
        self._slots = {}
        self._cache = OrderedDict()
        self._cache_lines = cache_lines

    # -- key slot management (issued by the SEV firmware only) -------------

    def install_key(self, asid, key):
        if not 0 <= asid <= MAX_ASID:
            raise KeySlotError("ASID %d out of range" % asid)
        self._slots[asid] = bytes(key)

    def uninstall_key(self, asid):
        self._slots.pop(asid, None)

    def slot_installed(self, asid):
        return asid in self._slots

    def _key(self, asid):
        key = self._slots.get(asid)
        if key is None:
            raise KeySlotError("no key installed for ASID %d" % asid)
        return key

    # -- plaintext cache ----------------------------------------------------

    def _cache_fill(self, line_pa, plaintext):
        self._cache[line_pa] = bytes(plaintext)
        self._cache.move_to_end(line_pa)
        while len(self._cache) > self._cache_lines:
            self._cache.popitem(last=False)

    def _cache_lookup(self, line_pa):
        line = self._cache.get(line_pa)
        if line is not None:
            self._cache.move_to_end(line_pa)
        return line

    def _cache_invalidate(self, pa, length):
        first = pa >> CACHE_LINE_SHIFT
        last = (pa + max(length, 1) - 1) >> CACHE_LINE_SHIFT
        for line in range(first, last + 1):
            self._cache.pop(line << CACHE_LINE_SHIFT, None)

    def flush_cache(self):
        """WBINVD equivalent: drop all plaintext lines."""
        self._cache.clear()

    def cached_lines(self):
        return set(self._cache)

    # -- encrypted data path --------------------------------------------------

    def _charge_transfer(self, length, encrypted, reason):
        lines = max(1, (length + CACHE_LINE - 1) // CACHE_LINE)
        per_line = LINE_TRANSFER_CYCLES
        if encrypted:
            per_line += ENC_LINE_EXTRA_CYCLES
        self.cycles.charge(lines * per_line, reason)

    def read(self, pa, length, c_bit=False, asid=HOST_ASID):
        """A CPU-side read; decrypts when the C-bit is set."""
        if not c_bit:
            self._charge_transfer(length, False, "mem-read")
            return self.memory.read(pa, length)
        key = self._key(asid)
        out = bytearray()
        for line_pa, off, take in split_lines(pa, length):
            cached = self._cache_lookup(line_pa)
            if cached is not None:
                # Plaintext hit regardless of who asks: the leak channel.
                self.cycles.charge(L1_HIT_CYCLES, "mem-read-cached")
                out.extend(cached[off:off + take])
                continue
            self._charge_transfer(CACHE_LINE, True, "mem-read-enc")
            raw_line = self.memory.read(line_pa, CACHE_LINE)
            plain_line = crypto.xex_decrypt(key, line_tweak(line_pa), raw_line)
            self._cache_fill(line_pa, plain_line)
            out.extend(plain_line[off:off + take])
        return bytes(out)

    def write(self, pa, data, c_bit=False, asid=HOST_ASID):
        """A CPU-side write; encrypts when the C-bit is set."""
        if not c_bit:
            self._charge_transfer(len(data), False, "mem-write")
            self._cache_invalidate(pa, len(data))
            self.memory.write(pa, data)
            return
        key = self._key(asid)
        view = memoryview(data)
        for line_pa, off, take in split_lines(pa, len(data)):
            chunk = bytes(view[:take])
            view = view[take:]
            self._charge_transfer(CACHE_LINE, True, "mem-write-enc")
            ct = crypto.xex_encrypt(key, line_tweak(line_pa), chunk, offset=off)
            self.memory.write(line_pa + off, ct)
            cached = self._cache_lookup(line_pa)
            if cached is None:
                # Write-allocate: fetch and decrypt the rest of the line.
                raw_line = self.memory.read(line_pa, CACHE_LINE)
                cached = crypto.xex_decrypt(key, line_tweak(line_pa), raw_line)
            patched = bytearray(cached)
            patched[off:off + take] = chunk
            self._cache_fill(line_pa, patched)

    # -- DMA port -------------------------------------------------------------

    def dma_read(self, pa, length):
        """Device-initiated read: raw bus bytes, never decrypted."""
        if length < 0:
            raise PhysicalMemoryError("negative DMA length %d" % length)
        self._charge_transfer(length, False, "dma-read")
        return self.memory.read(pa, length)

    def dma_write(self, pa, data):
        """Device-initiated write: raw bus bytes; snoops (invalidates) cache."""
        self._charge_transfer(len(data), False, "dma-write")
        self._cache_invalidate(pa, len(data))
        self.memory.write(pa, data)
