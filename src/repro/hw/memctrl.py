"""The memory controller with the SME/SEV AES engine.

Faithful structural properties (paper Sections 2.1, 2.2, 6.1, 6.2):

* Keys live in *slots* indexed by ASID (slot 0 is the host SME key).
  They are installed only by the SEV firmware's ACTIVATE command; no
  software ever reads a slot back.
* Encryption is deterministic and tweaked by the physical cache-line
  address.  Ciphertext replayed at the same physical address decrypts to
  the stale plaintext (the replay attack works at this layer);
  ciphertext moved elsewhere decrypts to garbage.
* There is **no integrity**: a wrong key or corrupted ciphertext just
  yields garbage plaintext (Section 8 suggests a Bonsai Merkle Tree).
* The cache holds *plaintext* lines indexed purely by physical address.
  An encrypted read that hits the cache is served the plaintext even if
  the reader's ASID (and hence key) differs — this is the cache channel
  behind the inter-VM remapping attack of Section 6.2.
* The DMA port moves raw bus bytes and never touches the keys, so DMA
  from the driver domain sees ciphertext of protected pages (and this is
  why the PV I/O path needs the Fidelius I/O encoding of Section 4.3.5).

Threat-model note on the keystream cache: the fast data path leans on
``repro.common.crypto``'s LRU keystream-line cache, which is keyed by
the key bytes and therefore *holds key-derived secret material*.  That
cache is simulator state, not architectural state — nothing in the
modelled machine can address it, so it adds no attack surface to the
model — but key lifetime hygiene still applies: ``install_key`` /
``uninstall_key`` purge every entry derived from the outgoing key, so a
re-ACTIVATEd ASID can neither be served stale keystream nor leave a
retired key's stream lingering in host memory.  The *plaintext* line
cache below is architectural and deliberately leaky (see above).

The read/write fast paths (single-line short-circuit, skipped
write-allocate on a full-line overwrite) change only wall-clock cost:
cycle charges and all functional outputs are bit-identical to
:class:`ReferenceMemoryController`, the kept-simple twin that the
differential suite drives in lockstep with this class.
"""

import hashlib
from collections import OrderedDict
from hashlib import sha256 as _sha256

from repro.common import crypto
from repro.common.constants import (
    CACHE_LINE,
    CACHE_LINE_SHIFT,
    ENC_LINE_EXTRA_CYCLES,
    HOST_ASID,
    L1_HIT_CYCLES,
    LINE_TRANSFER_CYCLES,
    MAX_ASID,
)
from repro.common.errors import PhysicalMemoryError, ReproError


class KeySlotError(ReproError):
    """Access with an ASID whose key slot is empty."""


def line_tweak(line_pa):
    """The position tweak: the physical address of the cache line."""
    return line_pa.to_bytes(8, "little")


#: one encrypted line on the bus: transfer plus the AES-engine tax
_ENC_LINE_CYCLES = LINE_TRANSFER_CYCLES + ENC_LINE_EXTRA_CYCLES


def split_lines(pa, length):
    """Split [pa, pa+length) into (line_pa, offset_in_line, chunk_len)."""
    if length < 0:
        raise PhysicalMemoryError("negative region length %d" % length)
    line_pa = (pa >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
    off = pa - line_pa
    if off + length <= CACHE_LINE:
        # Dominant case: the region sits inside one line — no loop.
        return [(line_pa, off, length)] if length else []
    pieces = []
    cursor = pa
    remaining = length
    while remaining:
        line_pa = (cursor >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        off = cursor - line_pa
        take = min(remaining, CACHE_LINE - off)
        pieces.append((line_pa, off, take))
        cursor += take
        remaining -= take
    return pieces


def encrypt_region(key, pa, plaintext):
    """Ciphertext bytes as they would sit on DRAM at ``pa`` under ``key``.

    Shared by the memory controller and the SEV firmware (which holds
    guest keys directly and transforms memory images in place).  Runs
    on the cached-keystream wide-XOR fast path; bit-identical to the
    reference construction (``crypto._reference_xex_encrypt`` per line).
    """
    out = bytearray()
    view = memoryview(plaintext)
    pos = 0
    for line_pa, off, take in split_lines(pa, len(plaintext)):
        chunk = view[pos:pos + take]
        pos += take
        out += crypto.xex_line_encrypt(key, line_pa, chunk, off)
    return bytes(out)


#: The keystream construction is an involution, so decryption is identical.
decrypt_region = encrypt_region


class MemoryController:
    """Byte-addressable front end of :class:`PhysicalMemory` with crypto."""

    def __init__(self, memory, cycles, cache_lines=4096):
        self.memory = memory
        self.cycles = cycles
        self._slots = {}
        self._cache = OrderedDict()
        self._cache_lines = cache_lines
        #: wall-clock diagnostics (no architectural meaning):
        #: single-line fast-path uses and write-allocate reads avoided.
        self.fast_single_line = 0
        self.line_copies_avoided = 0

    def perf_counters(self):
        """Fast-path diagnostics for :meth:`Machine.perf_stats`."""
        return {
            "fast_single_line": self.fast_single_line,
            "line_copies_avoided": self.line_copies_avoided,
        }

    # -- key slot management (issued by the SEV firmware only) -------------

    def install_key(self, asid, key):
        if not 0 <= asid <= MAX_ASID:
            raise KeySlotError("ASID %d out of range" % asid)
        old = self._slots.get(asid)
        if old is not None:
            # Key rotation: no keystream of the outgoing key may survive.
            crypto.forget_key(old)
        self._slots[asid] = bytes(key)

    def uninstall_key(self, asid):
        old = self._slots.pop(asid, None)
        if old is not None:
            crypto.forget_key(old)

    def slot_installed(self, asid):
        return asid in self._slots

    def _key(self, asid):
        key = self._slots.get(asid)
        if key is None:
            raise KeySlotError("no key installed for ASID %d" % asid)
        return key

    # -- plaintext cache ----------------------------------------------------

    def _cache_fill(self, line_pa, plaintext):
        cache = self._cache
        cache[line_pa] = bytes(plaintext)
        cache.move_to_end(line_pa)
        while len(cache) > self._cache_lines:
            cache.popitem(last=False)

    def _cache_lookup(self, line_pa):
        line = self._cache.get(line_pa)
        if line is not None:
            self._cache.move_to_end(line_pa)
        return line

    def _cache_invalidate(self, pa, length):
        first = pa >> CACHE_LINE_SHIFT
        last = (pa + max(length, 1) - 1) >> CACHE_LINE_SHIFT
        for line in range(first, last + 1):
            self._cache.pop(line << CACHE_LINE_SHIFT, None)

    def flush_cache(self):
        """WBINVD equivalent: drop all plaintext lines."""
        self._cache.clear()

    def cached_lines(self):
        return set(self._cache)

    def state_fingerprint(self):
        """SHA-256 over the controller's architectural state.

        Covers the installed key slots (hashed — the fingerprint must
        never expose key bytes) and the plaintext line cache in LRU
        order.  Restore-equivalence digests compare this across a
        machine and its restored twin; the wall-clock diagnostics stay
        out, matching their no-architectural-meaning contract.
        """
        h = hashlib.sha256()
        for asid in sorted(self._slots):
            h.update(b"slot|%d|" % asid)
            h.update(hashlib.sha256(self._slots[asid]).digest())
        for line_pa, line in self._cache.items():
            h.update(b"line|%d|" % line_pa)
            h.update(line)
        return h.hexdigest()

    # -- encrypted data path --------------------------------------------------

    def _charge_transfer(self, length, encrypted, reason):
        lines = max(1, (length + CACHE_LINE - 1) // CACHE_LINE)
        per_line = LINE_TRANSFER_CYCLES
        if encrypted:
            per_line += ENC_LINE_EXTRA_CYCLES
        self.cycles.charge(lines * per_line, reason)

    def read(self, pa, length, c_bit=False, asid=HOST_ASID):
        """A CPU-side read; decrypts when the C-bit is set."""
        if not c_bit:
            self._charge_transfer(length, False, "mem-read")
            return self.memory.read(pa, length)
        key = self._slots.get(asid)
        if key is None:
            raise KeySlotError("no key installed for ASID %d" % asid)
        if length <= 0:
            if length < 0:
                raise PhysicalMemoryError("negative region length %d" % length)
            return b""
        line_pa = (pa >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        off = pa - line_pa
        if off + length <= CACHE_LINE:
            # Single-line fast path: no piece list, one slice out.
            self.fast_single_line += 1
            cached = self._cache.get(line_pa)
            if cached is not None:
                # Plaintext hit regardless of who asks: the leak channel.
                self._cache.move_to_end(line_pa)
                self.cycles.charge(L1_HIT_CYCLES, "mem-read-cached")
                return cached[off:off + length]
            plain_line = self._fill_line(key, line_pa)
            if length == CACHE_LINE:
                return plain_line
            return plain_line[off:off + length]
        # Multi-line: walk the lines in access order — no piece list is
        # materialized — batching every run of consecutive *missing*
        # lines into one wide decrypt (one span-keystream lookup, one
        # XOR, one charge_many) instead of a per-line Python loop.  One
        # raw span read covers every missing line (DRAM sits below the
        # timing model).
        first_line = line_pa
        end = pa + length
        last_line = ((end - 1) >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        span_len = last_line + CACHE_LINE - first_line
        raw_span = None
        out_parts = []
        cache = self._cache
        charge = self.cycles.charge
        run_start = 0
        run_n = 0
        line_pa = first_line
        while line_pa <= last_line:
            cached = cache.get(line_pa)
            if cached is None:
                if not run_n:
                    run_start = line_pa
                run_n += 1
                line_pa += CACHE_LINE
                continue
            if run_n:
                # The pending misses come first in access order; their
                # fills may evict this very line, so re-check after.
                if raw_span is None:
                    raw_span = self.memory.read(first_line, span_len)
                self._fill_missing_run(key, run_start, run_n, raw_span,
                                       first_line, pa, end, out_parts)
                run_n = 0
                cached = cache.get(line_pa)
                if cached is None:
                    run_start = line_pa
                    run_n = 1
                    line_pa += CACHE_LINE
                    continue
            cache.move_to_end(line_pa)
            charge(L1_HIT_CYCLES, "mem-read-cached")
            lo = pa - line_pa if pa > line_pa else 0
            hi = end - line_pa if end - line_pa < CACHE_LINE else CACHE_LINE
            out_parts.append(cached[lo:hi])
            line_pa += CACHE_LINE
        if run_n:
            if raw_span is None:
                raw_span = self.memory.read(first_line, span_len)
            self._fill_missing_run(key, run_start, run_n, raw_span,
                                   first_line, pa, end, out_parts)
        return b"".join(out_parts)

    def _fill_missing_run(self, key, start, n, raw_span, first_line,
                          pa, end, out_parts):
        """Decrypt, cache and emit a run of ``n`` consecutive missing
        lines starting at line ``start``; the run's contribution to the
        read of ``[pa, end)`` is appended to ``out_parts`` as one slice.

        Cycle/state equivalence with the reference per-line loop:

        * :meth:`CycleCounter.charge_many` is defined to equal ``n``
          individual charges (the ledger is order-free sums);
        * the span keystream equals the per-line keystreams concatenated
          (see :func:`crypto.span_keystream_int`), so the one wide XOR
          yields exactly the per-line plaintexts;
        * evictions are deferred to the end of the run: inserts append
          at the LRU tail and never disturb the head, so popping the
          overflow afterwards removes the same victims, in the same
          order, as popping one per insert.  A run at least as long as
          the whole cache evicts *everything* that preceded it, so the
          surviving state is exactly the run's last ``capacity`` lines —
          built directly instead of insert-then-pop (evictions carry no
          charge or counter, so the shortcut is unobservable).
        """
        self.cycles.charge_many(_ENC_LINE_CYCLES, "mem-read-enc", n)
        rel = start - first_line
        cache = self._cache
        cap = self._cache_lines
        if n == 1:
            plain_run = crypto.xex_line_decrypt(
                key, start, raw_span[rel:rel + CACHE_LINE])
            cache[start] = plain_run
            width = CACHE_LINE
        else:
            width = n << CACHE_LINE_SHIFT
            word = int.from_bytes(raw_span[rel:rel + width], "little") \
                ^ crypto.span_keystream_int(key, start, n)
            plain_run = word.to_bytes(width, "little")
            if n >= cap:
                cache.clear()
                pos = width - (cap << CACHE_LINE_SHIFT)
                line_pa = start + pos
                while pos < width:
                    cache[line_pa] = plain_run[pos:pos + CACHE_LINE]
                    pos += CACHE_LINE
                    line_pa += CACHE_LINE
            else:
                pos = 0
                line_pa = start
                for _ in range(n):
                    cache[line_pa] = plain_run[pos:pos + CACHE_LINE]
                    pos += CACHE_LINE
                    line_pa += CACHE_LINE
        lo = pa - start if pa > start else 0
        run_end = start + width
        hi = width - (run_end - end) if end < run_end else width
        out_parts.append(plain_run if not lo and hi == width
                         else plain_run[lo:hi])
        over = len(cache) - cap
        while over > 0:
            cache.popitem(last=False)
            over -= 1

    def _fill_line(self, key, line_pa):
        """Miss path: fetch, decrypt (wide XOR) and cache one line."""
        self.cycles.charge(_ENC_LINE_CYCLES, "mem-read-enc")
        raw_line = self.memory.read(line_pa, CACHE_LINE)
        plain_line = crypto.xex_line_decrypt(key, line_pa, raw_line)
        # _cache_fill inlined; the decrypt output is already immutable
        # bytes, so the defensive copy is skipped too.
        cache = self._cache
        cache[line_pa] = plain_line
        cache.move_to_end(line_pa)
        if len(cache) > self._cache_lines:
            cache.popitem(last=False)
        return plain_line

    def _write_line(self, key, line_pa, off, chunk):
        """Encrypt and store one chunk confined to a single line."""
        self.cycles.charge(_ENC_LINE_CYCLES, "mem-write-enc")
        take = len(chunk)
        ct = crypto.xex_line_encrypt(key, line_pa, chunk, off)
        cache = self._cache
        if take == CACHE_LINE:
            # Whole line overwritten: the write-allocate fetch would be
            # patched over entirely, so skip it (same bytes, same charges).
            self.memory.write(line_pa, ct)
            self.line_copies_avoided += 1
            cache[line_pa] = bytes(chunk)
        else:
            self.memory.write(line_pa + off, ct)
            cached = cache.get(line_pa)
            if cached is None:
                # Write-allocate: fetch and decrypt the rest of the line.
                raw_line = self.memory.read(line_pa, CACHE_LINE)
                cached = crypto.xex_line_decrypt(key, line_pa, raw_line)
            patched = bytearray(cached)
            patched[off:off + take] = chunk
            cache[line_pa] = bytes(patched)
        cache.move_to_end(line_pa)
        if len(cache) > self._cache_lines:
            cache.popitem(last=False)

    def write(self, pa, data, c_bit=False, asid=HOST_ASID):
        """A CPU-side write; encrypts when the C-bit is set."""
        if not c_bit:
            self._charge_transfer(len(data), False, "mem-write")
            self._cache_invalidate(pa, len(data))
            self.memory.write(pa, data)
            return
        key = self._slots.get(asid)
        if key is None:
            raise KeySlotError("no key installed for ASID %d" % asid)
        length = len(data)
        if length == 0:
            return
        line_pa = (pa >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        off = pa - line_pa
        if off + length <= CACHE_LINE:
            # Single-line fast path: no piece list, no chunk copies.
            self.fast_single_line += 1
            self._write_line(key, line_pa, off,
                             data if isinstance(data, bytes) else bytes(data))
            return
        # Multi-line: encrypt line by line (charging in order) but issue
        # a single contiguous ciphertext write and at most one raw span
        # read for write-allocate — DRAM bytes come out identical to the
        # per-line sequence because the pieces tile [pa, pa+length).
        pieces = split_lines(pa, length)
        first_line = pieces[0][0]
        raw_span = None
        ct_parts = []
        view = memoryview(data)
        pos = 0
        cache = self._cache
        charge = self.cycles.charge
        for line_pa, off, take in pieces:
            # memoryview slice: no bytes() copy on the way to the engine.
            chunk = view[pos:pos + take]
            pos += take
            charge(_ENC_LINE_CYCLES, "mem-write-enc")
            ct_parts.append(crypto.xex_line_encrypt(key, line_pa, chunk, off))
            if take == CACHE_LINE:
                self.line_copies_avoided += 1
                cache[line_pa] = bytes(chunk)
            else:
                cached = cache.get(line_pa)
                if cached is None:
                    # Write-allocate from the pre-write span: decrypting
                    # the old line then patching equals the reference's
                    # decrypt-after-own-ct-write then patch.
                    if raw_span is None:
                        span_len = pieces[-1][0] + CACHE_LINE - first_line
                        raw_span = self.memory.read(first_line, span_len)
                    rel = line_pa - first_line
                    cached = crypto.xex_line_decrypt(
                        key, line_pa, raw_span[rel:rel + CACHE_LINE])
                patched = bytearray(cached)
                patched[off:off + take] = chunk
                cache[line_pa] = bytes(patched)
            cache.move_to_end(line_pa)
            if len(cache) > self._cache_lines:
                cache.popitem(last=False)
        self.memory.write(pa, b"".join(ct_parts))

    # -- batched span ops -----------------------------------------------------

    def run_batch(self, ops):
        """Execute a list of span-level memory ops in order; one result
        per op.  The single batched entry point guest programs use
        (through :meth:`GuestContext.batch`) instead of one Python call
        per access:

        * ``("r", pieces)`` — read; ``pieces`` is a sequence of
          ``(pa, length, c_bit, asid)`` spans whose plaintexts are
          joined into one ``bytes`` result;
        * ``("w", pieces, data)`` — write; the pieces tile ``data`` in
          order; result ``None``;
        * ``("h", pieces)`` — hash; SHA-256 over the concatenated
          plaintext of the pieces, streamed into the hasher so the
          joined bytes are never materialized; result is the digest.

        Each piece runs on the (span-batched) read/write paths, so
        charges, cache evolution and DRAM bytes are identical to issuing
        the same pieces as individual :meth:`read`/:meth:`write` calls —
        the per-access/batched differential suite pins this.
        """
        results = []
        read = self.read
        write = self.write
        for op in ops:
            kind = op[0]
            pieces = op[1]
            if kind == "r":
                if len(pieces) == 1:
                    pa, length, c_bit, asid = pieces[0]
                    results.append(read(pa, length, c_bit=c_bit, asid=asid))
                else:
                    results.append(b"".join(
                        read(pa, length, c_bit=c_bit, asid=asid)
                        for pa, length, c_bit, asid in pieces))
            elif kind == "w":
                view = memoryview(op[2])
                pos = 0
                for pa, length, c_bit, asid in pieces:
                    write(pa, bytes(view[pos:pos + length]),
                          c_bit=c_bit, asid=asid)
                    pos += length
                if pos != len(view):
                    raise PhysicalMemoryError(
                        "write batch pieces tile %d bytes, data has %d"
                        % (pos, len(view)))
                results.append(None)
            elif kind == "h":
                hasher = _sha256()
                for pa, length, c_bit, asid in pieces:
                    hasher.update(read(pa, length, c_bit=c_bit, asid=asid))
                results.append(hasher.digest())
            else:
                raise ReproError("unknown batch op kind %r" % (kind,))
        return results

    # -- DMA port -------------------------------------------------------------

    def dma_read(self, pa, length):
        """Device-initiated read: raw bus bytes, never decrypted."""
        if length < 0:
            raise PhysicalMemoryError("negative DMA length %d" % length)
        self._charge_transfer(length, False, "dma-read")
        return self.memory.read(pa, length)

    def dma_write(self, pa, data):
        """Device-initiated write: raw bus bytes; snoops (invalidates) cache."""
        self._charge_transfer(len(data), False, "dma-write")
        self._cache_invalidate(pa, len(data))
        self.memory.write(pa, data)


class ReferenceMemoryController(MemoryController):
    """The kept-simple twin of the optimized data path.

    ``read``/``write`` here are the pre-optimization implementations,
    running on ``crypto._reference_*`` (no midstates, no keystream
    cache, byte-at-a-time XOR).  The differential suite drives this
    class and :class:`MemoryController` in lockstep over randomized op
    sequences and asserts byte-identical memory, byte-identical reads
    and identical cycle ledgers; ``repro.eval.perfbench`` uses it as
    the wall-clock baseline.  Do not optimize this class.
    """

    def read(self, pa, length, c_bit=False, asid=HOST_ASID):
        if not c_bit:
            self._charge_transfer(length, False, "mem-read")
            return self.memory.read(pa, length)
        key = self._key(asid)
        out = bytearray()
        for line_pa, off, take in _reference_split_lines(pa, length):
            cached = self._cache_lookup(line_pa)
            if cached is not None:
                self.cycles.charge(L1_HIT_CYCLES, "mem-read-cached")
                out.extend(cached[off:off + take])
                continue
            self._charge_transfer(CACHE_LINE, True, "mem-read-enc")
            raw_line = self.memory.read(line_pa, CACHE_LINE)
            plain_line = crypto._reference_xex_decrypt(
                key, line_tweak(line_pa), raw_line)
            self._cache_fill(line_pa, plain_line)
            out.extend(plain_line[off:off + take])
        return bytes(out)

    def write(self, pa, data, c_bit=False, asid=HOST_ASID):
        if not c_bit:
            self._charge_transfer(len(data), False, "mem-write")
            self._cache_invalidate(pa, len(data))
            self.memory.write(pa, data)
            return
        key = self._key(asid)
        view = memoryview(data)
        for line_pa, off, take in _reference_split_lines(pa, len(data)):
            chunk = bytes(view[:take])
            view = view[take:]
            self._charge_transfer(CACHE_LINE, True, "mem-write-enc")
            ct = crypto._reference_xex_encrypt(
                key, line_tweak(line_pa), chunk, offset=off)
            self.memory.write(line_pa + off, ct)
            cached = self._cache_lookup(line_pa)
            if cached is None:
                raw_line = self.memory.read(line_pa, CACHE_LINE)
                cached = crypto._reference_xex_decrypt(
                    key, line_tweak(line_pa), raw_line)
            patched = bytearray(cached)
            patched[off:off + take] = chunk
            self._cache_fill(line_pa, patched)

    def run_batch(self, ops):
        """The same batched API, implemented as a plain per-access loop
        over the reference ``read``/``write`` — the equivalence oracle
        for the optimized :meth:`MemoryController.run_batch`."""
        results = []
        for op in ops:
            kind = op[0]
            pieces = op[1]
            if kind == "r":
                parts = []
                for pa, length, c_bit, asid in pieces:
                    parts.append(self.read(pa, length,
                                           c_bit=c_bit, asid=asid))
                results.append(b"".join(parts))
            elif kind == "w":
                data = bytes(op[2])
                pos = 0
                for pa, length, c_bit, asid in pieces:
                    self.write(pa, data[pos:pos + length],
                               c_bit=c_bit, asid=asid)
                    pos += length
                if pos != len(data):
                    raise PhysicalMemoryError(
                        "write batch pieces tile %d bytes, data has %d"
                        % (pos, len(data)))
                results.append(None)
            elif kind == "h":
                parts = []
                for pa, length, c_bit, asid in pieces:
                    parts.append(self.read(pa, length,
                                           c_bit=c_bit, asid=asid))
                results.append(hashlib.sha256(b"".join(parts)).digest())
            else:
                raise ReproError("unknown batch op kind %r" % (kind,))
        return results


def _reference_split_lines(pa, length):
    """The original loop-always ``split_lines``, kept for the reference
    controller so its twin keeps zero fast-path code."""
    if length < 0:
        raise PhysicalMemoryError("negative region length %d" % length)
    pieces = []
    cursor = pa
    remaining = length
    while remaining:
        line_pa = (cursor >> CACHE_LINE_SHIFT) << CACHE_LINE_SHIFT
        off = cursor - line_pa
        take = min(remaining, CACHE_LINE - off)
        pieces.append((line_pa, off, take))
        cursor += take
        remaining -= take
    return pieces
