"""An IOMMU: translation and permission checks for device DMA.

This is an *extension beyond the paper* (in the spirit of its Section 8
hardware reflections): the paper's threat analysis concedes that
software cannot intercept device-side writes, leaving the DMA
ciphertext-replay window open.  With an IOMMU in the machine, every DMA
goes through a device page table — and that table is hypervisor-managed
memory, which means Fidelius can write-protect it and police its
updates with the same PIT/GIT machinery it already uses for NPTs.

The device table reuses the nested-page-table structure: bus frame
number -> host frame number with a writable bit.  The table is *built by
the caller* (the hypervisor passes a ``repro.xen.npt.NestedPageTable``)
and injected here, so the hardware layer never imports hypervisor code.
"""

from repro.common.constants import PAGE_SIZE
from repro.common.errors import NestedPageFault, ReproError


class IommuFault(ReproError):
    """A device access the IOMMU refused."""

    def __init__(self, bus_addr, write):
        self.bus_addr = bus_addr
        self.write = write
        super().__init__(
            "IOMMU blocked device %s at bus address %#x"
            % ("write" if write else "read", bus_addr))


class Iommu:
    """One IOMMU context (we model a single device domain: the disk)."""

    def __init__(self, table):
        #: The device page table: any object with the nested-page-table
        #: translate/entry_pa/all_table_pfns surface.
        self.table = table
        self.enabled = True
        self.faults = 0

    def translate(self, bus_addr, write):
        """Translate a device access; raises :class:`IommuFault`."""
        if not self.enabled:
            return bus_addr
        try:
            translation = self.table.translate(bus_addr, write=write)
        except NestedPageFault:
            self.faults += 1
            raise IommuFault(bus_addr, write)
        return translation.pa

    def window(self, bus_gfn, length):
        """All (bus_addr, pa) page pieces for a device transfer."""
        pieces = []
        addr = bus_gfn * PAGE_SIZE
        remaining = length
        while remaining > 0:
            take = min(remaining, PAGE_SIZE - addr % PAGE_SIZE)
            pieces.append((addr, take))
            addr += take
            remaining -= take
        return pieces


class ProtectedDmaEngine:
    """A DMA engine whose accesses go through the IOMMU."""

    def __init__(self, memctrl, iommu):
        self._memctrl = memctrl
        self.iommu = iommu
        self.transfers = 0

    def read(self, bus_addr, length):
        self.transfers += 1
        out = bytearray()
        cursor = bus_addr
        remaining = length
        while remaining:
            take = min(remaining, PAGE_SIZE - cursor % PAGE_SIZE)
            pa = self.iommu.translate(cursor, write=False)
            out.extend(self._memctrl.dma_read(pa, take))
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, bus_addr, data):
        self.transfers += 1
        view = memoryview(data)
        cursor = bus_addr
        while view.nbytes:
            take = min(view.nbytes, PAGE_SIZE - cursor % PAGE_SIZE)
            pa = self.iommu.translate(cursor, write=True)
            self._memctrl.dma_write(pa, bytes(view[:take]))
            cursor += take
            view = view[take:]
