"""Calibrated per-op cost tables: what the faithful datapath would
have spent.

The fleet model never executes guest memory traffic; it *charges* for
it.  The unit of charge is virtual nanoseconds of faithful-simulator
work, calibrated from the committed ``BENCH_simulator.json``
(:mod:`repro.eval.perfbench`, schema ``fidelius-perfbench/3``):

* ``enc_rw_mix`` gives the measured cost of one encrypted line-granular
  memory operation through the optimized
  :class:`~repro.hw.memctrl.MemoryController`; a page re-encryption is
  ``PAGE_SIZE / CACHE_LINE`` of those;
* ``walker_tlb`` gives ``per_translation_us`` for an NPT walk;
* ``guest_macro`` gives the per-round cost of a booted guest's batched
  workload, the proxy for the fixed part of boot/launch.

Everything else (SEND/RECEIVE transport framing, attestation quotes,
key-rotation firmware calls) is expressed as documented multiples of
those measured primitives — see ``docs/fleet.md`` for the derivation
table.  All fields are integers so that virtual-clock arithmetic is
exact and digests byte-stable.

A :class:`CostTable` is a frozen, picklable dataclass: CLIs load it
once (:func:`load_cost_table`) and pass it *into* sharded work units,
so the work units themselves stay free of filesystem reads (FID013).
"""

import json
from dataclasses import asdict, dataclass

from repro.common.constants import CACHE_LINE, PAGE_SIZE

#: encrypted cache-line operations per page re-encryption
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE

#: fallback primitives (ns), matching the committed BENCH_simulator.json
#: within round-off: one encrypted line op through the optimized
#: datapath, one NPT translation, one guest_macro round
DEFAULT_LINE_OP_NS = 20_315
DEFAULT_TRANSLATION_NS = 6_674
DEFAULT_GUEST_ROUND_NS = 4_153_872


@dataclass(frozen=True)
class CostTable:
    """Per-operation virtual cost, in nanoseconds of faithful work."""

    #: one encrypted line-granular access (the measured primitive)
    line_op_ns: int = DEFAULT_LINE_OP_NS
    #: one nested-page-table translation
    translation_ns: int = DEFAULT_TRANSLATION_NS
    #: fixed part of booting a protected guest (measurement, LAUNCH
    #: sequence, kernel handshake), before per-page image decryption
    boot_fixed_ns: int = DEFAULT_GUEST_ROUND_NS
    #: fixed part of one SEND/RECEIVE migration (policy checks, nonce
    #: exchange, transport framing)
    migrate_fixed_ns: int = DEFAULT_GUEST_ROUND_NS // 2
    #: fixed part of one remote-attestation quote + verification
    attest_ns: int = DEFAULT_GUEST_ROUND_NS // 4
    #: fixed part of one per-guest key rotation (firmware key install,
    #: TLB/cache shootdown), before per-page re-encryption
    rotate_fixed_ns: int = DEFAULT_GUEST_ROUND_NS // 2
    #: tearing one guest down (key uninstall, frame scrubbing is
    #: charged per page)
    shutdown_fixed_ns: int = DEFAULT_GUEST_ROUND_NS // 4
    #: where the table came from ("default" or "bench")
    source: str = "default"

    @property
    def page_ns(self):
        """Re-encrypting one page: a line op per cache line, plus one
        translation to reach it."""
        return self.line_op_ns * LINES_PER_PAGE + self.translation_ns

    def boot_ns(self, pages):
        return self.boot_fixed_ns + pages * self.page_ns

    def migrate_ns(self, pages):
        """SEND at the source + RECEIVE at the target: each page is
        decrypted once and re-encrypted once."""
        return self.migrate_fixed_ns + 2 * pages * self.page_ns

    def rotate_ns(self, pages):
        return self.rotate_fixed_ns + pages * self.page_ns

    def shutdown_ns(self, pages):
        return self.shutdown_fixed_ns + pages * self.page_ns

    def asdict(self):
        return asdict(self)


def from_bench(report):
    """Calibrate a :class:`CostTable` from a parsed perfbench report.

    Missing sections fall back to the defaults field by field, so a
    ``--quick`` or ``--only``-restricted artifact still calibrates what
    it can.
    """
    benches = report.get("benchmarks", {})
    line_op_ns = DEFAULT_LINE_OP_NS
    mix = benches.get("enc_rw_mix", {})
    if mix.get("ops"):
        line_op_ns = max(1, round(1e9 * mix["optimized_s"] / mix["ops"]))
    translation_ns = DEFAULT_TRANSLATION_NS
    walker = benches.get("walker_tlb", {})
    if walker.get("per_translation_us"):
        translation_ns = max(1, round(1e3 * walker["per_translation_us"]))
    round_ns = DEFAULT_GUEST_ROUND_NS
    macro = benches.get("guest_macro", {})
    if macro.get("rounds"):
        round_ns = max(1, round(1e9 * macro["optimized_s"]
                                / macro["rounds"]))
    return CostTable(
        line_op_ns=line_op_ns,
        translation_ns=translation_ns,
        boot_fixed_ns=round_ns,
        migrate_fixed_ns=round_ns // 2,
        attest_ns=round_ns // 4,
        rotate_fixed_ns=round_ns // 2,
        shutdown_fixed_ns=round_ns // 4,
        source="bench",
    )


def load_cost_table(path=None):
    """The calibrated table from a ``BENCH_simulator.json`` at ``path``,
    or the documented defaults when ``path`` is None.

    Callers on the CLI side load once and hand the frozen table to the
    model/scenario layer; sharded work units must receive it as an
    argument rather than call this (no filesystem access inside work
    units).
    """
    if path is None:
        return CostTable()
    with open(path) as handle:
        return from_bench(json.load(handle))
