"""The lockstep differential: fleet model vs real Cloud, move by move.

The fleet model earns the right to stand in for the faithful stack by
agreeing with it.  This module drives a small real
:class:`~repro.cloud.Cloud` (every host a full Fidelius
:class:`~repro.system.System`) and a :class:`~repro.fleet.model.FleetModel`
under the ``spread`` policy through the *same* scripted campaign —
launches, policy-chosen migrations, a tampered host that must fall to
attestation, post-quarantine placements, shutdowns — and compares every
placement decision and every resulting inventory event-for-event.

``spread`` is the policy under test because it is definitionally the
model-side mirror of :meth:`Cloud.pick_host`: fewest resident tenants
wins, ties to the lowest host index.  Any divergence — a different
placement, a different quarantine set, a different inventory — is a
recorded mismatch, and CI fails on a non-empty list.

The cloud side quarantines *through the real mechanism*: the script
tampers a host's hypervisor text and lets remote attestation catch it
on the next placement, while the model side declares the same host
quarantined.  That asymmetry is the point — the model asserts what the
faithful stack must independently discover.
"""

import random
from dataclasses import dataclass, field

from repro.cloud import Cloud
from repro.common.errors import ReproError
from repro.fleet.events import FleetError
from repro.fleet.model import FleetModel
from repro.system import GuestOwner

#: guest footprint used on both sides (real frames == modelled frames)
GUEST_FRAMES = 48


@dataclass
class LockstepReport:
    """What the differential did and where (if anywhere) it diverged."""

    hosts: int
    seed: int
    launches: int = 0
    migrations: int = 0
    shutdowns: int = 0
    quarantines: int = 0
    mismatches: list = field(default_factory=list)
    inventory: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.mismatches

    def asdict(self):
        return {
            "hosts": self.hosts,
            "seed": self.seed,
            "launches": self.launches,
            "migrations": self.migrations,
            "shutdowns": self.shutdowns,
            "quarantines": self.quarantines,
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


class _Differential:
    """One cloud, one model, and the comparisons between them."""

    def __init__(self, seed, hosts, frames):
        self.cloud = Cloud(hosts=hosts, frames=frames, seed=seed)
        # Generous modelled capacity: the real machines' frame budget is
        # consumed by firmware/hypervisor structures too, so capacity
        # must never be the model's reason to refuse what the cloud
        # accepts at this scale.
        self.model = FleetModel(hosts=hosts, host_frames=64 * frames,
                                seed=seed, policy="spread")
        self.report = LockstepReport(hosts=hosts, seed=seed)

    def _mismatch(self, what, cloud_says, model_says):
        self.report.mismatches.append(
            "%s: cloud=%r model=%r" % (what, cloud_says, model_says))

    def check_inventories(self, when):
        cloud_inv = self.cloud.inventory()
        model_inv = self.model.inventory()
        if cloud_inv != model_inv:
            self._mismatch("inventory after %s" % when, cloud_inv,
                           model_inv)
        cloud_q = sorted(self.cloud.quarantined)
        model_q = sorted(self.model.quarantined)
        if cloud_q != model_q:
            self._mismatch("quarantine set after %s" % when, cloud_q,
                           model_q)

    def launch(self, name, owner):
        tenant = self.cloud.launch_tenant(
            name, owner, payload=b"LOCKSTEP|" + name.encode(),
            guest_frames=GUEST_FRAMES)
        guest = self.model.launch(name, GUEST_FRAMES)
        self.report.launches += 1
        if tenant.host_index != guest.host:
            self._mismatch("placement of %s" % name, tenant.host_index,
                           guest.host)
        self.check_inventories("launch %s" % name)

    def migrate(self, name):
        try:
            cloud_host = self.cloud.migrate_tenant(name).host_index
        except ReproError as exc:
            cloud_host = "refused: %s" % exc
        try:
            model_host = self.model.migrate(name).host
        except FleetError as exc:
            model_host = "refused: %s" % exc
        self.report.migrations += 1
        if cloud_host != model_host:
            self._mismatch("migration of %s" % name, cloud_host,
                           model_host)
        self.check_inventories("migrate %s" % name)

    def shutdown(self, name):
        self.cloud.shutdown_tenant(name)
        self.model.shutdown(name)
        self.report.shutdowns += 1
        self.check_inventories("shutdown %s" % name)

    def tamper(self, index):
        """Corrupt host ``index``'s hypervisor text on the cloud side;
        declare the same host quarantined on the model side.  The cloud
        must *discover* the quarantine via attestation on its next
        placement — that is what the next launch/migrate checks."""
        host = self.cloud.host(index)
        host.machine.memory.write(host.hypervisor.text.base_va + 0x600,
                                  b"\xCC\xCC")
        self.model.quarantine_host(index)
        self.report.quarantines += 1


def run_lockstep(seed=0xC10D, hosts=3, tenants=6, churn=6, frames=4096):
    """Drive the full differential; returns a :class:`LockstepReport`.

    The campaign: launch ``tenants`` guests, run ``churn`` policy-chosen
    migrations, tamper the host heading the placement order and verify
    both sides route around it identically (the cloud by *discovering*
    the tamper at its next attestation), then shut a tenant down and
    keep churning.
    """
    diff = _Differential(seed, hosts, frames)
    rng = random.Random(seed ^ 0xD1FF)
    names = ["ls-t%03d" % i for i in range(tenants)]
    owners = {name: GuestOwner(seed=seed + 7 * i)
              for i, name in enumerate(names)}

    for name in names:
        diff.launch(name, owners[name])
    for _ in range(churn):
        diff.migrate(rng.choice(names))

    # Tamper the host at the *head* of the placement order (fewest
    # guests, ties to the lowest index).  Lazy attestation only probes
    # candidates in preference order, so the head is the one host the
    # very next placement is guaranteed to attest — discovery is
    # deterministic whatever shape the churn left the loads in.
    tampered = min(range(hosts),
                   key=lambda i: (len(diff.model.hosts[i].guests), i))
    diff.tamper(tampered)
    # Next placements must route around the tampered host on both sides
    # (this is where the cloud actually quarantines it).
    extra = "ls-extra"
    diff.launch(extra, GuestOwner(seed=seed + 999))
    names.append(extra)
    owners[extra] = None

    victim = rng.choice(sorted(n for n in names
                               if diff.model.guests[n].host != tampered))
    diff.shutdown(victim)
    names.remove(victim)
    survivors = [n for n in names
                 if diff.model.guests[n].host != tampered]
    for _ in range(max(2, churn // 2)):
        diff.migrate(rng.choice(survivors))

    diff.report.inventory = diff.model.inventory()
    return diff.report
