"""Datacenter-scale fleet simulation: a discrete-event core (FID003
layer 7, between ``repro.cloud`` and ``repro.eval``).

The :class:`~repro.cloud.Cloud` layer is *faithful*: every host carries
a full :class:`~repro.hw.machine.Machine` with DRAM frames, firmware
and hypervisor state, so a 10k-host fleet is memory-infeasible before
it is slow.  This package trades that fidelity for scale along one
explicit axis: hosts and guests become lightweight state records whose
cycle/DRAM/key-rotation costs are charged from calibrated per-op cost
tables (:mod:`repro.fleet.costs`, sampled from ``BENCH_simulator.json``)
instead of by executing the full datapath.  Everything else — placement
policy, quarantine semantics, migration/evacuation ordering — mirrors
the real control plane, and two escape hatches keep the model honest:

* **lazy hydration** (:meth:`FleetModel.hydrate`): any single host can
  be materialized into a real :class:`~repro.system.System` with its
  resident guests booted, so invariant spot-checks and attack
  reproductions still run against the faithful simulator;
* **lockstep differential** (:mod:`repro.fleet.lockstep`): a 3-host
  fleet-model run is driven event-for-event against a real ``Cloud``,
  comparing placement decisions, inventories and quarantine outcomes.

Determinism is the same contract as everywhere else in the tree: one
seed fixes the event order (the :class:`EventQueue`'s tie-break RNG),
the scenario schedules and every policy decision; fleet regions shard
through :mod:`repro.runner` with the merged digest byte-identical to a
serial run.
"""

from repro.fleet.costs import CostTable, load_cost_table
from repro.fleet.events import Event, EventQueue, FleetError
from repro.fleet.lockstep import LockstepReport, run_lockstep
from repro.fleet.model import FleetModel, GuestRecord, HostRecord
from repro.fleet.policies import (
    POLICIES,
    AffinityPolicy,
    BinPackingPolicy,
    PlacementPolicy,
    SpreadPolicy,
    make_policy,
)
from repro.fleet.scenarios import (
    RegionReport,
    ScenarioSpec,
    drive_region,
    region_specs,
    run_fleet,
    summarize,
)

__all__ = [
    "AffinityPolicy",
    "BinPackingPolicy",
    "CostTable",
    "Event",
    "EventQueue",
    "FleetError",
    "FleetModel",
    "GuestRecord",
    "HostRecord",
    "LockstepReport",
    "POLICIES",
    "PlacementPolicy",
    "RegionReport",
    "ScenarioSpec",
    "SpreadPolicy",
    "drive_region",
    "load_cost_table",
    "make_policy",
    "region_specs",
    "run_fleet",
    "run_lockstep",
    "summarize",
]
