"""Pluggable placement policies behind one small protocol.

A policy owns two things: the *sort key* the model's capacity index
keeps hosts ordered by, and the *choice rule* that turns an ordered
index into a placement decision.  Keeping the key inside the policy is
what makes placement O(log n): the :class:`CapacityIndex` is a sorted
list maintained by ``bisect`` on every launch/shutdown/migrate/failure,
so a decision is a bisection (bin-packing) or a scan from the head that
normally terminates immediately (spread), never a full fleet walk.

Three built-ins, each deterministic with ties broken by host index:

``spread``
    Fewest resident guests first — the fleet-model mirror of
    :meth:`repro.cloud.Cloud.pick_host`'s least-loaded rule, which is
    why the lockstep differential runs under it.
``bin_packing``
    Tightest fit: the host with the *least* free frames that still
    holds the request.  Never overcommits (the property suite holds it
    to that).
``affinity``
    Co-locate tagged tenants: prefer the admissible host already
    holding the most guests sharing a tag with the request, fall back
    to spread when no tagged host admits it.

``POLICIES`` is the dispatch table scenario specs name policies
through; it is registered as a constant in the state registry.
"""

import bisect

from repro.fleet.events import FleetError


class CapacityIndex:
    """A sorted ``(key, host_index)`` list over admissible hosts.

    ``key`` comes from the owning policy; entries are maintained with
    ``bisect`` so add/remove/update are O(log n) comparisons (plus the
    list memmove).  Hosts leave the index entirely when they fail or
    are quarantined — absence *is* inadmissibility.
    """

    def __init__(self):
        self._entries = []
        self._keys = {}          # host index -> current key

    def __len__(self):
        return len(self._entries)

    def __contains__(self, host_index):
        return host_index in self._keys

    def add(self, host_index, key):
        if host_index in self._keys:
            raise FleetError("host %d already indexed" % host_index)
        bisect.insort(self._entries, (key, host_index))
        self._keys[host_index] = key

    def remove(self, host_index):
        key = self._keys.pop(host_index, None)
        if key is None:
            return False
        at = bisect.bisect_left(self._entries, (key, host_index))
        assert self._entries[at] == (key, host_index)
        del self._entries[at]
        return True

    def update(self, host_index, key):
        """Re-key one host (its load or free capacity changed)."""
        self.remove(host_index)
        self.add(host_index, key)

    def ordered(self):
        """Entries in key order — the policy's preference order."""
        return self._entries

    def from_key(self, key):
        """Entries at or after ``key``, in order (bin-packing's
        bisection entry point).

        The probe is wrapped in a 1-tuple so it compares against the
        ``(key, host_index)`` entries key-first, and — being shorter —
        sorts before every entry sharing the key, giving the leftmost
        match.
        """
        at = bisect.bisect_left(self._entries, (key,))
        return self._entries[at:]


class PlacementPolicy:
    """The protocol: a sort key and a choice rule over the index."""

    name = "?"

    def key(self, host):
        """The capacity-index sort key for ``host``."""
        raise NotImplementedError

    def choose(self, model, frames, tags=(), exclude=frozenset()):
        """The host index to place ``frames``/``tags`` on, or raise
        :class:`FleetError` when no admissible host fits."""
        raise NotImplementedError

    def _refuse(self, frames):
        raise FleetError("no admissible host has %d free frames"
                         % frames)


class SpreadPolicy(PlacementPolicy):
    """Fewest guests wins; max-load minus min-load stays <= 1 under
    churn because every placement lands on a current minimum."""

    name = "spread"

    def key(self, host):
        return (len(host.guests), host.index)

    def choose(self, model, frames, tags=(), exclude=frozenset()):
        for _key, index in model.capacity_index.ordered():
            if index in exclude:
                continue
            if model.hosts[index].free_frames >= frames:
                return index
        self._refuse(frames)


class BinPackingPolicy(PlacementPolicy):
    """Tightest admissible fit, found by bisecting the free-frame
    order: the first index entry with ``free_frames >= frames``."""

    name = "bin_packing"

    def key(self, host):
        return (host.free_frames, host.index)

    def choose(self, model, frames, tags=(), exclude=frozenset()):
        for _key, index in model.capacity_index.from_key((frames, -1)):
            if index in exclude:
                continue
            return index
        self._refuse(frames)


class AffinityPolicy(PlacementPolicy):
    """Co-locate shared tags; spread otherwise.

    Preference order among tagged candidates: most co-located
    shared-tag guests first, then lowest host index — deterministic,
    and capacity-checked so affinity never overcommits either.
    """

    name = "affinity"

    def key(self, host):
        return (len(host.guests), host.index)

    def choose(self, model, frames, tags=(), exclude=frozenset()):
        ranked = {}              # host index -> shared-tag guest count
        for tag in tags:
            for index, count in model.tag_hosts.get(tag, {}).items():
                ranked[index] = ranked.get(index, 0) + count
        for index in sorted(ranked, key=lambda i: (-ranked[i], i)):
            if index in exclude or index not in model.capacity_index:
                continue
            if model.hosts[index].free_frames >= frames:
                return index
        for _key, index in model.capacity_index.ordered():
            if index in exclude:
                continue
            if model.hosts[index].free_frames >= frames:
                return index
        self._refuse(frames)


#: scenario specs name policies through this table (constant: built at
#: import, never written — registered in repro.common.state_registry)
POLICIES = {
    "affinity": AffinityPolicy,
    "bin_packing": BinPackingPolicy,
    "spread": SpreadPolicy,
}


def make_policy(name):
    """A fresh policy instance for ``name`` (policies are stateless,
    but per-model instances keep the door open for stateful ones)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise FleetError("unknown placement policy %r (have: %s)"
                         % (name, ", ".join(sorted(POLICIES))))
