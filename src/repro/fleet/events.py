"""The discrete-event engine: virtual clock, seeded tie-break, timers.

One :class:`EventQueue` is the entire notion of time for a fleet model.
Virtual time is an integer count of *nanoseconds of modelled work* —
integers so that clock arithmetic is exact, digests are byte-stable
across platforms, and a pickled queue restores to the identical state
(the checkpoint/resume round-trip the fleet soak proves).

Ordering is a total order and therefore deterministic:

    (time, priority, tie, seq)

``tie`` is drawn from the queue's own seeded RNG at *schedule* time, so
two events scheduled for the same instant at the same priority race in
a seed-reproducible shuffle rather than in submission order — the
population-level analogue of the chaos soak's seeded fault schedules
(migration storms are interesting precisely because their arrivals
collide).  ``seq`` breaks the astronomically unlikely residual tie and
doubles as the cancellable timer handle.

Events are pure data (:class:`Event`), never closures: the queue must
pickle byte-for-byte for checkpoint/resume, and a model dispatches on
``Event.kind`` instead of calling back into captured state.
"""

import heapq
import random
from dataclasses import dataclass

from repro.common.errors import ReproError

#: tie-break entropy width; 32 bits keeps tuples small and hashable
_TIE_BITS = 32


class FleetError(ReproError):
    """A fleet-model operation that cannot proceed (no capacity, no
    admissible host, unknown guest).  Scenario drivers treat these the
    way the chaos soak treats a clean ``ReproError``: an accepted,
    counted outcome — never silent, never fatal to the run."""


@dataclass(frozen=True)
class Event:
    """One unit of scheduled work, as pure picklable data.

    ``data`` is stored as a sorted tuple of ``(key, value)`` pairs so
    events hash, pickle byte-stably, and render canonically in digests.
    """

    kind: str
    data: tuple = ()

    @classmethod
    def of(cls, kind, **data):
        return cls(kind, tuple(sorted(data.items())))

    def get(self, key, default=None):
        for name, value in self.data:
            if name == key:
                return value
        return default

    def asdict(self):
        return dict(self.data)


class EventQueue:
    """A deterministic priority queue over virtual time.

    ``schedule`` returns the event's sequence number — the handle
    ``cancel`` takes.  Cancellation is lazy (a tombstone set consulted
    at pop time), so it is O(1) and does not disturb the heap.  ``pop``
    advances :attr:`now` to the popped event's time; time never runs
    backwards and scheduling into the past is refused.
    """

    def __init__(self, seed=0):
        self.now = 0
        self._heap = []
        self._seq = 0
        self._cancelled = set()
        self._rng = random.Random(seed)
        self.scheduled = 0
        self.processed = 0
        self.cancelled = 0

    def __len__(self):
        return len(self._heap) - len(self._cancelled)

    @property
    def empty(self):
        return len(self) == 0

    def schedule(self, delay_ns, event, priority=0):
        """Enqueue ``event`` ``delay_ns`` virtual nanoseconds from now;
        returns the timer handle."""
        if delay_ns < 0:
            raise FleetError("cannot schedule %r %d ns into the past"
                             % (event.kind, delay_ns))
        handle = self._seq
        self._seq += 1
        tie = self._rng.getrandbits(_TIE_BITS)
        heapq.heappush(self._heap,
                       (self.now + delay_ns, priority, tie, handle, event))
        self.scheduled += 1
        return handle

    def cancel(self, handle):
        """Cancel a pending timer; True if it was still pending."""
        if handle >= self._seq or handle in self._cancelled:
            return False
        if not any(entry[3] == handle for entry in self._heap):
            return False
        self._cancelled.add(handle)
        self.cancelled += 1
        return True

    def peek_time(self):
        """The virtual time of the next live event, or None."""
        self._drop_tombstones()
        return self._heap[0][0] if self._heap else None

    def pop(self):
        """``(time_ns, event)`` for the next live event, advancing the
        clock; None when the queue is drained."""
        while self._heap:
            time_ns, _priority, _tie, handle, event = \
                heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = time_ns
            self.processed += 1
            return time_ns, event
        return None

    def _drop_tombstones(self):
        while self._heap and self._heap[0][3] in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap)[3])
