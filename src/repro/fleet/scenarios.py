"""Seed-deterministic scenario drivers over the fleet model.

One :class:`ScenarioSpec` describes a whole campaign — fleet shape,
placement policy, a live-migration storm, a correlated host-failure
wave with recovery, autoscaling, rolling fleet-wide key rotation,
shutdown churn — as a frozen, picklable value.  :func:`drive_region`
turns one spec into a drained :class:`~repro.fleet.model.FleetModel`
and a :class:`RegionReport`; it is a module-level function taking only
picklable arguments precisely so it can ride a
:class:`~repro.runner.plan.WorkUnit` (FID013 audits it at the
submission site in :func:`run_fleet`).

Scale comes from sharding: :func:`region_specs` splits a spec into
``regions`` independent sub-fleets (cross-region migration is not
modelled — regions are the unit of blast radius, as in real
datacenters), each with a derived seed, and :func:`run_fleet` runs
them through the persistent worker pool.  The merged reports digest
byte-identically whatever ``--jobs`` was — the same contract every
other sharded sweep in the tree honors.

All virtual times are integer nanoseconds.  Arrival processes draw
from a scenario RNG seeded separately from the model's tie-break RNG,
so the schedule (what happens when) and the race resolution (who wins
a same-instant collision) are independently reproducible.
"""

import dataclasses
import random
from dataclasses import dataclass, field

from repro.fleet.costs import CostTable
from repro.fleet.events import Event
from repro.fleet.model import FleetModel
from repro.runner import WorkUnit, execute
from repro.runner.merge import digest

#: virtual spans (ns) the arrival processes spread over
LAUNCH_SPAN_NS = 1_000_000_000
STORM_SPAN_NS = 1_000_000_000
RECOVERY_DELAY_NS = 200_000_000
ROTATE_STEP_NS = 100_000


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one fleet campaign needs, as one picklable value."""

    hosts: int = 100
    guests: int = 500
    host_frames: int = 256
    guest_frames: tuple = (16, 48)
    tag_count: int = 8
    policy: str = "spread"
    seed: int = 0xF1EE7
    regions: int = 1
    region: str = "r0"
    storm_migrations: int = 0
    failure_fraction: float = 0.0
    failure_groups: int = 4
    recover: bool = True
    rotate: bool = False
    autoscale_hosts: int = 0
    churn_shutdowns: int = 0
    costs: CostTable = field(default_factory=CostTable)


@dataclass
class RegionReport:
    """One region's outcome: metrics, clocks, and the state digest."""

    region: str
    hosts: int
    guests_requested: int
    events: int
    clock_ns: int
    metrics: dict
    survivors: int
    digest: str


def _split(total, regions, index):
    """Deterministic near-even split of ``total`` across regions."""
    base, extra = divmod(total, regions)
    return base + (1 if index < extra else 0)


def region_specs(spec):
    """``spec`` split into per-region single-region specs.

    Each region gets a derived seed and a near-even share of hosts,
    guests, storm migrations, autoscale steps and churn; fractions
    (failure wave) apply per region.
    """
    if spec.regions < 1:
        raise ValueError("regions must be >= 1")
    out = []
    for index in range(spec.regions):
        out.append(dataclasses.replace(
            spec,
            regions=1,
            region="r%d" % index,
            seed=spec.seed * 1_000_003 + index,
            hosts=_split(spec.hosts, spec.regions, index),
            guests=_split(spec.guests, spec.regions, index),
            storm_migrations=_split(spec.storm_migrations, spec.regions,
                                    index),
            autoscale_hosts=_split(spec.autoscale_hosts, spec.regions,
                                   index),
            churn_shutdowns=_split(spec.churn_shutdowns, spec.regions,
                                   index),
        ))
    return out


def _guest_name(spec, index):
    return "%s-g%06d" % (spec.region, index)


def schedule_scenario(model, spec):
    """Load every campaign phase onto the model's event queue."""
    rng = random.Random(spec.seed ^ 0x5CEA)
    for index in range(spec.guests):
        frames = rng.randint(spec.guest_frames[0], spec.guest_frames[1])
        tag = "tag%d" % rng.randrange(max(1, spec.tag_count))
        model.queue.schedule(
            rng.randrange(LAUNCH_SPAN_NS),
            Event.of("launch", name=_guest_name(spec, index),
                     frames=frames, tags=(tag,)))
    storm_start = LAUNCH_SPAN_NS
    for _ in range(spec.storm_migrations):
        victim = _guest_name(spec, rng.randrange(max(1, spec.guests)))
        model.queue.schedule(
            storm_start + rng.randrange(STORM_SPAN_NS),
            Event.of("migrate", name=victim))
    if spec.autoscale_hosts:
        # capacity relief arrives while the storm is running...
        for index in range(spec.autoscale_hosts):
            model.queue.schedule(
                storm_start + rng.randrange(STORM_SPAN_NS // 2),
                Event.of("scale-up", hosts=1, frames=spec.host_frames))
        # ...and the extra hosts are drained and retired afterwards
        for index in range(spec.autoscale_hosts):
            model.queue.schedule(
                storm_start + 2 * STORM_SPAN_NS,
                Event.of("scale-down", host=spec.hosts + index))
    if spec.failure_fraction > 0:
        wave_time = storm_start + STORM_SPAN_NS // 2
        for host in _correlated_hosts(spec, rng):
            # one instant for the whole wave: processing order is the
            # queue's seeded tie-break, a genuinely racing failure burst
            model.queue.schedule(wave_time,
                                 Event.of("host-fail", host=host),
                                 priority=-1)
            if spec.recover:
                model.queue.schedule(
                    wave_time + RECOVERY_DELAY_NS
                    + rng.randrange(RECOVERY_DELAY_NS),
                    Event.of("host-recover", host=host))
    if spec.rotate:
        rotate_start = storm_start + STORM_SPAN_NS
        for host in range(spec.hosts):
            model.queue.schedule(rotate_start + host * ROTATE_STEP_NS,
                                 Event.of("rotate-host", host=host))
    for _ in range(spec.churn_shutdowns):
        victim = _guest_name(spec, rng.randrange(max(1, spec.guests)))
        model.queue.schedule(
            storm_start + STORM_SPAN_NS + rng.randrange(STORM_SPAN_NS),
            Event.of("shutdown", name=victim))


def _correlated_hosts(spec, rng):
    """The failure wave's victims: whole contiguous racks, so failures
    are correlated the way shared power/top-of-rack faults are."""
    want = max(1, round(spec.hosts * spec.failure_fraction))
    groups = max(1, min(spec.failure_groups, spec.hosts))
    rack_size = max(1, spec.hosts // groups)
    racks = list(range(groups))
    rng.shuffle(racks)
    victims = []
    for rack in racks:
        if len(victims) >= want:
            break
        start = rack * rack_size
        end = spec.hosts if rack == groups - 1 else start + rack_size
        victims.extend(range(start, min(end, spec.hosts)))
    return victims[:want]


def build_region(spec):
    """A populated, scheduled (but not yet run) region model."""
    model = FleetModel(hosts=spec.hosts, host_frames=spec.host_frames,
                       seed=spec.seed, policy=spec.policy,
                       costs=spec.costs)
    schedule_scenario(model, spec)
    return model


def drive_region(spec):
    """Run one region to completion; the WorkUnit target."""
    model = build_region(spec)
    events = model.run()
    survivors = sum(1 for g in model.guests.values()
                    if g.state == "RUNNING")
    return RegionReport(
        region=spec.region,
        hosts=len(model.hosts),
        guests_requested=spec.guests,
        events=events,
        clock_ns=model.queue.now,
        metrics=dict(model.metrics),
        survivors=survivors,
        digest=model.state_digest(),
    )


def summarize(reports):
    """Fleet-level totals plus the canonical cross-region digest."""
    totals = {}
    for report in reports:
        for key, value in report.metrics.items():
            totals[key] = totals.get(key, 0) + value
    return {
        "regions": len(reports),
        "hosts": sum(r.hosts for r in reports),
        "guests_requested": sum(r.guests_requested for r in reports),
        "survivors": sum(r.survivors for r in reports),
        "events": sum(r.events for r in reports),
        "virtual_ns": max((r.clock_ns for r in reports), default=0),
        "metrics": totals,
        "digest": digest(reports),
    }


def run_fleet(spec, jobs=1, reuse_workers=True):
    """Shard a multi-region spec through the runner and merge.

    Returns ``(run_report, region_reports, summary)``; the summary's
    ``digest`` is byte-identical whatever ``jobs`` was.
    """
    units = [WorkUnit.of(region.region, drive_region, region)
             for region in region_specs(spec)]
    run_report = execute(units, jobs=jobs, reuse_workers=reuse_workers)
    reports = run_report.values()
    return run_report, reports, summarize(reports)
