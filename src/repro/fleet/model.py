"""The fleet model: lightweight host/guest records over the event core.

A :class:`FleetModel` is the scale-regime twin of
:class:`~repro.cloud.Cloud`: the same control-plane semantics
(least-loaded/packed/affine placement, quarantine-as-inadmissibility,
retrying migration, drain-style evacuation, per-guest key rotation),
but hosts and guests are plain dataclass records — no DRAM frames, no
firmware, no hypervisor — and every operation *charges* its calibrated
cost (:mod:`repro.fleet.costs`) to the virtual clock instead of
executing the faithful datapath.  10k hosts and 50k guests fit in tens
of megabytes; ``BENCH_fleet.json`` holds the trajectory.

Honesty mechanisms:

* :meth:`hydrate` materializes any single host into a *real*
  :class:`~repro.system.System` — Fidelius installed, every resident
  guest booted from an owner-encrypted image — so invariant audits and
  attack reproductions can spot-check the model against the faithful
  simulator at any point in a scenario;
* the 3-host lockstep differential (:mod:`repro.fleet.lockstep`)
  drives this model and a real ``Cloud`` through the same script and
  compares every placement decision.

Determinism: one seed fixes the event queue's tie-breaks and the
model RNG; all iteration is over insertion-ordered dicts or sorted
keys; the state digest (:meth:`state_digest`) is byte-stable across
processes, which is what lets fleet regions shard through
:mod:`repro.runner`.
"""

import random
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.fleet.costs import CostTable
from repro.fleet.events import Event, EventQueue, FleetError
from repro.fleet.policies import CapacityIndex, make_policy
from repro.runner.merge import digest
from repro.system import GuestOwner, System

#: host lifecycle states
UP, FAILED, QUARANTINED, RETIRED = "UP", "FAILED", "QUARANTINED", "RETIRED"

#: default bound on the in-model operator event log
DEFAULT_LOG_LIMIT = 1024


@dataclass
class HostRecord:
    """One host as bookkeeping: capacity, state, key epoch."""

    index: int
    frames: int
    free_frames: int
    state: str = UP
    key_epoch: int = 0
    seed: int = 0
    #: insertion-ordered guest name -> frames (order drives evacuation)
    guests: dict = field(default_factory=dict)

    @property
    def admissible(self):
        return self.state == UP


@dataclass
class GuestRecord:
    """One guest as bookkeeping: where it lives and what it costs."""

    name: str
    host: int
    frames: int
    tags: tuple = ()
    state: str = "RUNNING"
    key_epoch: int = 0
    migrations: int = 0
    restarts: int = 0


class FleetModel:
    """A seeded, deterministic fleet of host/guest records."""

    def __init__(self, hosts, host_frames=256, seed=0, policy="spread",
                 costs=None, log_limit=DEFAULT_LOG_LIMIT):
        if hosts < 1:
            raise FleetError("a fleet needs at least one host")
        self.costs = costs if costs is not None else CostTable()
        self.policy = make_policy(policy)
        self.queue = EventQueue(seed)
        self.rng = random.Random((seed << 4) ^ 0xF1EE7)
        self.seed = seed
        self.hosts = []
        self.guests = {}
        self.capacity_index = CapacityIndex()
        self.tag_hosts = {}      # tag -> {host index -> guest count}
        self.quarantined = set()
        self.log = deque(maxlen=log_limit)
        self.metrics = {
            "attests": 0, "busy_ns": 0, "evacuated": 0, "failures": 0,
            "launches": 0, "lost_guests": 0, "migrations": 0,
            "recoveries": 0, "rejected": 0, "restarts": 0,
            "retired": 0, "rotated_guests": 0, "rotations": 0,
            "scale_ups": 0, "shutdowns": 0,
        }
        self._hydrated = {}
        for _ in range(hosts):
            self.add_host(host_frames)

    # -- bookkeeping helpers ---------------------------------------------------

    def __len__(self):
        return len(self.hosts)

    def _record(self, kind, **details):
        self.log.append((self.queue.now, kind,
                         tuple(sorted(details.items()))))

    def _charge(self, ns, _reason):
        self.metrics["busy_ns"] += ns

    def _reindex(self, host):
        if host.admissible:
            self.capacity_index.update(host.index, self.policy.key(host))

    def _deindex(self, host):
        self.capacity_index.remove(host.index)

    def _tag_shift(self, guest, host_index, delta):
        for tag in guest.tags:
            counts = self.tag_hosts.setdefault(tag, {})
            counts[host_index] = counts.get(host_index, 0) + delta
            if counts[host_index] <= 0:
                del counts[host_index]
            if not counts:
                del self.tag_hosts[tag]

    def _place_on(self, guest, host):
        if host.free_frames < guest.frames:
            raise FleetError(
                "host %d cannot hold %d frames (%d free)"
                % (host.index, guest.frames, host.free_frames))
        host.free_frames -= guest.frames
        host.guests[guest.name] = guest.frames
        guest.host = host.index
        guest.key_epoch = host.key_epoch
        self._tag_shift(guest, host.index, +1)
        self._reindex(host)

    def _remove_from(self, guest, host):
        host.free_frames += guest.frames
        del host.guests[guest.name]
        self._tag_shift(guest, host.index, -1)
        self._reindex(host)

    def _choose(self, frames, tags=(), exclude=frozenset()):
        index = self.policy.choose(self, frames, tags, exclude)
        self.metrics["attests"] += 1
        self._charge(self.costs.attest_ns, "attest")
        return index

    # -- host lifecycle --------------------------------------------------------

    def add_host(self, frames):
        host = HostRecord(index=len(self.hosts), frames=frames,
                          free_frames=frames,
                          seed=(self.seed << 8) + len(self.hosts))
        self.hosts.append(host)
        self.capacity_index.add(host.index, self.policy.key(host))
        return host

    def quarantine_host(self, index):
        """Fail closed, exactly like ``Cloud``: a quarantined host takes
        no placements or migration targets until an operator lifts it."""
        host = self.hosts[index]
        if host.state != UP:
            return
        host.state = QUARANTINED
        self.quarantined.add(index)
        self._deindex(host)
        self._record("host-quarantined", host=index)

    def lift_quarantine(self, index):
        host = self.hosts[index]
        if host.state != QUARANTINED:
            return
        host.state = UP
        self.quarantined.discard(index)
        self.capacity_index.add(index, self.policy.key(host))
        self._record("quarantine-lifted", host=index)

    def fail_host(self, index):
        """Abrupt host death: its guests are restarted elsewhere by the
        control plane (charged as fresh boots), or LOST when the
        remaining fleet has no room — the population-level outcome a
        correlated failure wave is run to measure."""
        host = self.hosts[index]
        if host.state in (FAILED, RETIRED):
            return
        if host.state == UP:
            self._deindex(host)
        self.quarantined.discard(index)
        host.state = FAILED
        self.metrics["failures"] += 1
        self._record("host-failed", host=index, guests=len(host.guests))
        for name in list(host.guests):
            guest = self.guests[name]
            self._remove_from(guest, host)
            try:
                target = self._choose(guest.frames, guest.tags,
                                      exclude={index})
            except FleetError:
                guest.state = "LOST"
                guest.host = -1
                self.metrics["lost_guests"] += 1
                self._record("guest-lost", guest=name)
                continue
            self._place_on(guest, self.hosts[target])
            guest.restarts += 1
            self.metrics["restarts"] += 1
            self._charge(self.costs.boot_ns(guest.frames), "restart")
        host.free_frames = host.frames

    def recover_host(self, index):
        host = self.hosts[index]
        if host.state != FAILED:
            return
        host.state = UP
        host.key_epoch += 1     # a rebuilt host comes up with fresh keys
        self.metrics["recoveries"] += 1
        self.capacity_index.add(index, self.policy.key(host))
        self._record("host-recovered", host=index)

    def retire_host(self, index):
        """Scale-down: drain the host, then take it out of service."""
        host = self.hosts[index]
        if host.state == RETIRED:
            return
        self.evacuate(index)
        if host.guests:
            raise FleetError("host %d still holds %d guests after drain"
                             % (index, len(host.guests)))
        if host.state == UP:
            self._deindex(host)
        self.quarantined.discard(index)
        host.state = RETIRED
        self.metrics["retired"] += 1
        self._record("host-retired", host=index)

    # -- guest lifecycle -------------------------------------------------------

    def launch(self, name, frames, tags=()):
        if name in self.guests:
            raise FleetError("guest %r already exists" % name)
        guest = GuestRecord(name=name, host=-1, frames=frames,
                            tags=tuple(tags))
        target = self._choose(frames, guest.tags)
        self._place_on(guest, self.hosts[target])
        self.guests[name] = guest
        self.metrics["launches"] += 1
        self._charge(self.costs.boot_ns(frames), "boot")
        return guest

    def shutdown(self, name):
        guest = self._running(name)
        self._remove_from(guest, self.hosts[guest.host])
        del self.guests[name]
        self.metrics["shutdowns"] += 1
        self._charge(self.costs.shutdown_ns(guest.frames), "shutdown")
        return guest

    def migrate(self, name, target=None, exclude=()):
        """Move one guest; with ``target=None`` the policy chooses,
        excluding the current host (and ``exclude``)."""
        guest = self._running(name)
        source = self.hosts[guest.host]
        if target is None:
            target = self._choose(guest.frames, guest.tags,
                                  exclude=set(exclude) | {guest.host})
        elif target == guest.host:
            return guest
        destination = self.hosts[target]
        if not destination.admissible:
            raise FleetError("host %d is not admissible" % target)
        if destination.free_frames < guest.frames:
            raise FleetError(
                "host %d cannot hold %d frames (%d free)"
                % (target, guest.frames, destination.free_frames))
        self._remove_from(guest, source)
        self._place_on(guest, destination)
        guest.migrations += 1
        self.metrics["migrations"] += 1
        self._charge(self.costs.migrate_ns(guest.frames), "migrate")
        return guest

    def evacuate(self, index, retries=2):
        """Drain every guest off one host, mirroring
        :meth:`Cloud.evacuate`'s per-guest bounded retry; guests whose
        retries exhaust stay put and the drain raises."""
        host = self.hosts[index]
        moved = []
        for name in list(host.guests):
            guest = self.guests[name]
            excluded = {index}
            last_error = None
            for _ in range(1 + retries):
                try:
                    target = self._choose(guest.frames, guest.tags,
                                          exclude=excluded)
                except FleetError as exc:
                    last_error = exc
                    break
                try:
                    self.migrate(name, target=target)
                    moved.append(name)
                    self.metrics["evacuated"] += 1
                    last_error = None
                    break
                except FleetError as exc:
                    excluded.add(target)
                    last_error = exc
            if guest.host == index:
                self._record("evacuation-stalled", guest=name, host=index)
                raise last_error if last_error is not None else \
                    FleetError("nowhere to evacuate %r to" % name)
        return moved

    def rotate_host_keys(self, index):
        """Rolling fleet key rotation, one host at a time: new host
        epoch, every resident guest re-encrypted under it
        (Section 4.3.6 at population scale)."""
        host = self.hosts[index]
        if host.state == RETIRED:
            return 0
        host.key_epoch += 1
        self.metrics["rotations"] += 1
        for name, frames in host.guests.items():
            self.guests[name].key_epoch = host.key_epoch
            self.metrics["rotated_guests"] += 1
            self._charge(self.costs.rotate_ns(frames), "rotate")
        self._record("host-rotated", host=index, guests=len(host.guests))
        return len(host.guests)

    def _running(self, name):
        guest = self.guests.get(name)
        if guest is None:
            raise FleetError("no guest %r" % name)
        if guest.state != "RUNNING":
            raise FleetError("guest %r is %s" % (name, guest.state))
        return guest

    # -- event dispatch --------------------------------------------------------

    #: Event.kind -> handler method; class-level constant
    HANDLERS = {
        "launch": "_on_launch",
        "migrate": "_on_migrate",
        "shutdown": "_on_shutdown",
        "host-fail": "_on_host_fail",
        "host-recover": "_on_host_recover",
        "rotate-host": "_on_rotate_host",
        "scale-up": "_on_scale_up",
        "scale-down": "_on_scale_down",
        "evacuate": "_on_evacuate",
    }

    def dispatch(self, event):
        """Run one event's handler; a :class:`FleetError` is a counted,
        logged rejection (the fleet analogue of the soak's clean
        ``ReproError`` outcome), never a crash."""
        try:
            handler = getattr(self, self.HANDLERS[event.kind])
        except KeyError:
            raise FleetError("no handler for event kind %r" % event.kind)
        try:
            handler(event)
        except FleetError as exc:
            self.metrics["rejected"] += 1
            self._record("rejected", event=event.kind, reason=str(exc))

    def run(self, max_events=None, until_ns=None):
        """Drain the queue (bounded by ``max_events`` / ``until_ns``);
        returns the number of events processed."""
        processed = 0
        while max_events is None or processed < max_events:
            if until_ns is not None:
                head = self.queue.peek_time()
                if head is None or head > until_ns:
                    break
            item = self.queue.pop()
            if item is None:
                break
            _when, event = item
            self.dispatch(event)
            processed += 1
        return processed

    def _on_launch(self, event):
        self.launch(event.get("name"), event.get("frames"),
                    tuple(event.get("tags", ())))

    def _on_migrate(self, event):
        self.migrate(event.get("name"), target=event.get("target"))

    def _on_shutdown(self, event):
        self.shutdown(event.get("name"))

    def _on_host_fail(self, event):
        self.fail_host(event.get("host"))

    def _on_host_recover(self, event):
        self.recover_host(event.get("host"))

    def _on_rotate_host(self, event):
        self.rotate_host_keys(event.get("host"))

    def _on_scale_up(self, event):
        for _ in range(event.get("hosts", 1)):
            self.add_host(event.get("frames"))
            self.metrics["scale_ups"] += 1

    def _on_scale_down(self, event):
        self.retire_host(event.get("host"))

    def _on_evacuate(self, event):
        self.evacuate(event.get("host"))

    # -- inspection ------------------------------------------------------------

    def inventory(self):
        """{host index: sorted resident guest names} over live hosts."""
        return {host.index: sorted(host.guests)
                for host in self.hosts if host.state != RETIRED}

    def snapshot_state(self):
        """The canonical-digest input: every modelled fact, no
        diagnostics (the log and wall-clock-free metrics are included —
        they are deterministic model outputs, not timings)."""
        return {
            "clock_ns": self.queue.now,
            "guests": {
                name: (g.host, g.frames, g.tags, g.state, g.key_epoch,
                       g.migrations, g.restarts)
                for name, g in self.guests.items()
            },
            "hosts": [
                (h.index, h.frames, h.free_frames, h.state, h.key_epoch,
                 tuple(h.guests))
                for h in self.hosts
            ],
            "metrics": dict(self.metrics),
            "policy": self.policy.name,
            "quarantined": sorted(self.quarantined),
        }

    def state_digest(self):
        """Byte-stable SHA-256 of :meth:`snapshot_state` — the
        serial-vs-``--jobs`` comparison key for sharded fleets."""
        return digest(self.snapshot_state())

    # -- lazy hydration --------------------------------------------------------

    def hydrate(self, index, frames=None):
        """Materialize host ``index`` as a real Fidelius
        :class:`~repro.system.System` with its resident guests booted.

        The faithful twin is built from the host's deterministic seed;
        each guest boots from an owner-encrypted image whose payload is
        a pure function of (guest name, key epoch), so two hydrations
        of the same model state are identical.  The system is cached
        until :meth:`dehydrate`; hydration is a diagnostic view and is
        therefore never part of the model's digest or its checkpoints
        (see ``__getstate__``).
        """
        host = self.hosts[index]
        if host.state == RETIRED:
            raise FleetError("host %d is retired" % index)
        if index in self._hydrated:
            return self._hydrated[index]
        if frames is None:
            frames = max(2048, 512 + 2 * sum(host.guests.values()))
        system = System.create(fidelius=True, frames=frames,
                               seed=host.seed)
        contexts = {}
        for name, guest_frames in host.guests.items():
            guest = self.guests[name]
            # zlib.crc32, not hash(): str hashes vary per process
            owner = GuestOwner(
                seed=(host.seed << 8) ^ (zlib.crc32(name.encode())
                                         & 0xFFFF))
            payload = b"FLEET|%s|epoch=%d|" % (name.encode(),
                                               guest.key_epoch)
            _domain, ctx = system.boot_protected_guest(
                name, owner, payload=payload,
                guest_frames=max(16, min(64, guest_frames)))
            contexts[name] = ctx
        self._hydrated[index] = (system, contexts)
        return system, contexts

    def dehydrate(self, index):
        """Drop the materialized twin for host ``index``."""
        return self._hydrated.pop(index, None) is not None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_hydrated"] = {}
        return state
