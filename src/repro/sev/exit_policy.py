"""Exit-reason exposure policies (paper Section 5.1).

Per VM-exit reason: which guest registers the hypervisor may see, which
it may legitimately update, and which VMCB fields it may write.  This
table models the GHCB protocol's per-exit ABI — what SEV-ES hardware
(and Fidelius's software shadow keeper, which the paper calls "a
software version of SEV-ES") hands the hypervisor for each exit class.
It lives in the SEV layer because it is a property of the hardware
exposure contract; Fidelius core re-exports it for its policy engine.
"""

from dataclasses import dataclass

from repro.common.types import ExitReason


@dataclass(frozen=True)
class ExitPolicy:
    """What the hypervisor may see and change for one exit reason."""

    visible_regs: frozenset = frozenset()
    writable_regs: frozenset = frozenset()
    writable_vmcb: frozenset = frozenset()


def _fs(*names):
    return frozenset(names)


#: Control/exit-information VMCB fields are never masked: the hypervisor
#: needs them to dispatch (e.g. the NPF fault address in exitinfo2).
ALWAYS_VISIBLE_VMCB = _fs(
    "exitcode", "exitinfo1", "exitinfo2", "asid", "np_enable",
    "nested_cr3", "intercepts", "event_injection",
)

#: Interrupt injection is a legitimate hypervisor duty on any exit.
ALWAYS_WRITABLE_VMCB = _fs("event_injection")

EXIT_POLICIES = {
    # "if the exit reason is CPUID, then all states are masked except
    # for specific four registers" (Section 5.1)
    ExitReason.CPUID: ExitPolicy(
        visible_regs=_fs("rax", "rcx"),
        writable_regs=_fs("rax", "rbx", "rcx", "rdx"),
        writable_vmcb=_fs("rip"),
    ),
    ExitReason.HYPERCALL: ExitPolicy(
        visible_regs=_fs("rax", "rdi", "rsi", "rdx", "r10", "r8"),
        writable_regs=_fs("rax"),
        writable_vmcb=_fs("rip"),
    ),
    # "if it is due to a nested page fault, Fidelius will mask all guest
    # states since the fault address ... is in the exitinfo field"
    ExitReason.NPF: ExitPolicy(),
    ExitReason.MSR: ExitPolicy(
        visible_regs=_fs("rcx"),
        writable_regs=_fs("rax", "rdx"),
        writable_vmcb=_fs("rip"),
    ),
    ExitReason.IOIO: ExitPolicy(
        visible_regs=_fs("rax", "rdx"),
        writable_regs=_fs("rax"),
        writable_vmcb=_fs("rip"),
    ),
    ExitReason.HLT: ExitPolicy(),
    ExitReason.INTR: ExitPolicy(),
    ExitReason.SHUTDOWN: ExitPolicy(),
}


def exit_policy(reason):
    policy = EXIT_POLICIES.get(reason)
    if policy is None:
        # Unknown exits expose nothing and allow nothing: fail closed.
        return ExitPolicy()
    return policy
