"""SEV-ES: hardware encryption of guest runtime state (paper §2.2).

AMD's Encrypted State extension seals the guest's save area (the VMSA)
and register file across VM exits: the hypervisor sees only what the
guest explicitly exposes through the GHCB protocol, and its writes to
guest state are ineffective — on VMRUN the hardware reloads the real
state from the encrypted VMSA.

We model the boundary exactly like Fidelius's shadow keeper (the paper
calls shadowing "a software version of SEV-ES") with two deliberate
differences that reproduce the paper's analysis:

* there is **no tamper detection** — hypervisor writes to protected
  state are silently discarded rather than aborting the entry;
* only the *save area* is protected.  The control area (nested CR3,
  ASID, intercepts) stays hypervisor-owned, and the NPT, grant tables
  and handle↔ASID binding stay hypervisor-managed — which is precisely
  why the paper's Section 2.2 lists replay, key-sharing abuse and the
  I/O path as "remaining problems even with SEV-ES enabled".
"""

from repro.hw.vmcb import SAVE_FIELDS
from repro.sev.exit_policy import exit_policy


class SevEsBoundary:
    """The hardware exit/entry state protection for ES-enabled guests.

    Installed as the hypervisor's register saver/restorer on SEV-ES
    hosts.  The exit-reason exposure sets are shared with Fidelius's
    policy table: they describe what the GHCB protocol hands the
    hypervisor for each exit class.
    """

    def __init__(self, hypervisor):
        self._hypervisor = hypervisor
        self._machine = hypervisor.machine
        self._vmsas = {}

    @staticmethod
    def _es_guest(vcpu):
        return getattr(vcpu.domain, "sev_es", False)

    def on_exit(self, vcpu):
        if not self._es_guest(vcpu):
            self._hypervisor._save_regs_direct(vcpu)
            return
        cpu = self._machine.cpu
        self._vmsas[vcpu] = (vcpu.vmcb.copy(), cpu.regs.copy())
        policy = exit_policy(vcpu.vmcb.exit_reason)
        # the GHCB exposes exactly the exit class's ABI registers;
        # everything else leaves the CPU as zeros
        cpu.regs.mask_except(policy.visible_regs)
        vcpu.vmcb.mask_fields(SAVE_FIELDS)
        vcpu.saved_gprs = cpu.regs.copy()

    def pre_entry(self, vcpu):
        if not self._es_guest(vcpu):
            self._hypervisor._restore_regs_direct(vcpu)
            return
        vmsa = self._vmsas.get(vcpu)
        if vmsa is None:
            self._hypervisor._restore_regs_direct(vcpu)
            return
        cpu = self._machine.cpu
        vmsa_vmcb, vmsa_regs = vmsa
        policy = exit_policy(vmsa_vmcb.exit_reason)
        # No verification: hardware just reloads the encrypted VMSA.
        # Hypervisor edits to save-area fields silently evaporate...
        vcpu.vmcb.restore_from(vmsa_vmcb, fields=SAVE_FIELDS)
        hypervisor_regs = vcpu.saved_gprs
        cpu.regs.load_from(vmsa_regs)
        # ...while the GHCB return registers flow back to the guest.
        for name in policy.writable_regs:
            cpu.regs[name] = hypervisor_regs[name]
        vcpu.vmcb.write("rax", cpu.regs["rax"])
        vcpu.vmcb.write("rsp", cpu.regs["rsp"])


def enable_sev_es(hypervisor):
    """Switch a (baseline) host's exit boundary to SEV-ES hardware."""
    boundary = SevEsBoundary(hypervisor)
    hypervisor.regs_saver = boundary.on_exit
    hypervisor.regs_restorer = boundary.pre_entry
    return boundary
