"""SEV firmware state machines: platform and per-guest contexts."""

import enum

from repro.common.crypto import ChainDigest
from repro.common.errors import FirmwareStateError

#: Guest policy bits (the SEV launch policy): restrictions the guest
#: owner bakes in at LAUNCH_START and the firmware enforces forever.
POLICY_NODBG = 1 << 0    # no debug decryption of guest memory
POLICY_NOSEND = 1 << 1   # guest may never be sent (no migration)
POLICY_ES = 1 << 2       # guest requires SEV-ES


class PlatformState(enum.Enum):
    UNINIT = "uninit"
    INIT = "init"


class GuestState(enum.Enum):
    """Per-guest context states (mirrors the SEV firmware spec).

    The transition discipline is load-bearing for the paper: SEND_UPDATE
    and RECEIVE_UPDATE only work in SENDING / RECEIVING states, which is
    why the SEV-based I/O path needs the *s-dom* and *r-dom* helper
    contexts pinned in those states (Section 4.3.5).
    """

    UNINIT = "uninit"
    LAUNCHING = "launching"
    RUNNING = "running"
    SENDING = "sending"
    RECEIVING = "receiving"


class GuestSevContext:
    """One guest's SEV state inside the firmware, referenced by handle."""

    def __init__(self, handle, kvek, policy=0):
        self.handle = handle
        self.kvek = kvek
        self.policy = policy
        self.state = GuestState.LAUNCHING
        self.asid = None
        #: Transport keys, present only while SENDING or RECEIVING.
        self.tek = None
        self.tik = None
        # Chained digests rather than live hashlib objects: their state
        # is plain bytes, so a checkpoint can freeze a context that is
        # mid-stream (see crypto.ChainDigest).
        self._digest = ChainDigest()
        #: Running transport-integrity MAC input (send/receive streams).
        self._stream = ChainDigest()

    def require_state(self, *states):
        if self.state not in states:
            raise FirmwareStateError(
                "/".join(s.value for s in states), self.state.value
            )

    # -- launch measurement -------------------------------------------------

    def extend_measurement(self, plaintext):
        self._digest.extend(plaintext)

    def measurement(self):
        return self._digest.digest()

    # -- transport stream integrity ------------------------------------------

    def reset_stream(self):
        self._stream = ChainDigest()

    def extend_stream(self, transport_ct):
        self._stream.extend(transport_ct)

    def stream_digest(self):
        return self._stream.digest()
