"""The AMD secure-processor (PSP) firmware model for SEV.

Implements the command groups the paper relies on (Sections 2.1, 4.3):
platform INIT/SHUTDOWN, guest LAUNCH_* / ACTIVATE / DEACTIVATE /
DECOMMISSION, and the SEND_* / RECEIVE_* groups that Fidelius
retrofits for encrypted-image boot, SEV-based I/O encryption and
migration.  Guest keys (``K_vek``) never leave the firmware; they are
installed into the memory controller's ASID slots by ACTIVATE.
"""

from repro.sev.firmware import SevFirmware, WrappedKeys
from repro.sev.state import GuestSevContext, GuestState, PlatformState

__all__ = [
    "SevFirmware",
    "WrappedKeys",
    "GuestSevContext",
    "GuestState",
    "PlatformState",
]
