"""The SEV firmware command interface.

Design notes mirroring the real hardware's (in)securities — the model
must be *faithfully weak* so the paper's attacks have something to beat:

* ``ACTIVATE(handle, asid)`` is policy-free: whoever can issue commands
  can bind any handle to any free ASID.  The handle↔ASID relationship is
  *not* protected (Section 2.2, "remaining problems even with SEV-ES"),
  which enables the key-sharing abuse attack.  Fidelius closes this by
  self-maintaining the SEV metadata and gating command submission
  (Section 4.2.3), modelled by the optional ``gate_check`` hook.
* SEND/RECEIVE transport crypto is keyed by a wrapped TEK/TIK pair whose
  unwrap key comes from a Diffie-Hellman agreement between the guest
  owner and this firmware — the relaying hypervisor cannot recover it
  (Section 4.3.2).
* Transport ciphertext is tweaked by an explicit caller-chosen value
  (record index for migration, sector number for the SEV I/O path), so
  both ends agree without sharing the position-bound memory tweak.
"""

from dataclasses import dataclass

from repro.common import crypto
from repro.common.constants import HOST_ASID, MAX_ASID
from repro.common.errors import SevError
from repro.hw.memctrl import decrypt_region, encrypt_region
from repro.sev.state import GuestSevContext, GuestState, PlatformState


@dataclass(frozen=True)
class WrappedKeys:
    """The ``K_wrap`` bundle returned by SEND_START (paper Section 4.3.2)."""

    tek: tuple
    tik: tuple


class SevFirmware:
    """The secure processor, attached to one machine's memory controller."""

    def __init__(self, machine):
        self._machine = machine
        self._memctrl = machine.memctrl
        self._rng = machine.rng
        self.platform_state = PlatformState.UNINIT
        self._contexts = {}
        self._next_handle = 1
        self._dh = None
        self._host_key = None
        #: Installed by Fidelius: called before every command; raises to
        #: model that the command-issuing code is reachable only through
        #: a type 3 gate once Fidelius is active.
        self.gate_check = None

    # -- internals ---------------------------------------------------------------

    def _check_gate(self, command):
        if self.gate_check is not None:
            self.gate_check(command)

    def _require_init(self):
        if self.platform_state is not PlatformState.INIT:
            raise SevError("PLATFORM_UNINIT", "platform not initialized")

    def _context(self, handle):
        ctx = self._contexts.get(handle)
        if ctx is None:
            raise SevError("INVALID_HANDLE", "no guest context %r" % handle)
        return ctx

    def _asid_in_use(self, asid):
        return any(c.asid == asid for c in self._contexts.values())

    # -- platform commands ----------------------------------------------------------

    def init(self, enable_sme=True):
        """INIT: bring up the platform; generate and install the SME key."""
        self._check_gate("INIT")
        if self.platform_state is PlatformState.INIT:
            raise SevError("PLATFORM_STATE", "platform already initialized")
        self.platform_state = PlatformState.INIT
        self._dh = crypto.DiffieHellman(self._rng)
        if enable_sme:
            self._host_key = crypto.random_key(self._rng)
            self._memctrl.install_key(HOST_ASID, self._host_key)
        return self._dh.public

    def shutdown(self):
        self._check_gate("SHUTDOWN")
        for handle in list(self._contexts):
            self.decommission(handle)
        self._memctrl.uninstall_key(HOST_ASID)
        self.platform_state = PlatformState.UNINIT

    @property
    def platform_public_key(self):
        """The platform's DH public value (part of the platform cert chain)."""
        self._require_init()
        return self._dh.public

    # -- guest launch group -------------------------------------------------------------

    def launch_start(self, policy=0, share_kvek_with=None):
        """LAUNCH_START: create a guest context; returns its handle.

        ``share_kvek_with`` creates a context sharing an existing guest's
        ``K_vek`` — the mechanism behind the *s-dom* helper domain of the
        SEV-based I/O path (Section 4.3.5).
        """
        self._check_gate("LAUNCH_START")
        self._require_init()
        if share_kvek_with is not None:
            kvek = self._context(share_kvek_with).kvek
        else:
            kvek = crypto.random_key(self._rng)
        handle = self._next_handle
        self._next_handle += 1
        self._contexts[handle] = GuestSevContext(handle, kvek, policy)
        return handle

    def launch_update_data(self, handle, pa, plaintext):
        """LAUNCH_UPDATE_DATA: encrypt ``plaintext`` in place at ``pa``."""
        self._check_gate("LAUNCH_UPDATE_DATA")
        ctx = self._context(handle)
        ctx.require_state(GuestState.LAUNCHING)
        self._memctrl.dma_write(pa, encrypt_region(ctx.kvek, pa, plaintext))
        ctx.extend_measurement(plaintext)

    def launch_measure(self, handle):
        ctx = self._context(handle)
        ctx.require_state(GuestState.LAUNCHING)
        return ctx.measurement()

    def launch_finish(self, handle):
        self._check_gate("LAUNCH_FINISH")
        ctx = self._context(handle)
        ctx.require_state(GuestState.LAUNCHING)
        ctx.state = GuestState.RUNNING
        return ctx.measurement()

    # -- activation group ------------------------------------------------------------------

    def activate(self, handle, asid):
        """ACTIVATE: install the guest's key into the ASID slot.

        Hardware-faithfully policy-free apart from requiring a free ASID:
        the *binding* between handle and ASID is chosen by the caller.
        """
        self._check_gate("ACTIVATE")
        ctx = self._context(handle)
        if not 1 <= asid <= MAX_ASID:
            raise SevError("INVALID_ASID", "asid %r out of range" % (asid,))
        if self._asid_in_use(asid):
            raise SevError("ASID_IN_USE", "asid %d already active" % asid)
        ctx.asid = asid
        self._memctrl.install_key(asid, ctx.kvek)

    def deactivate(self, handle):
        """DEACTIVATE: uninstall the key and free the ASID."""
        self._check_gate("DEACTIVATE")
        ctx = self._context(handle)
        if ctx.asid is not None:
            self._memctrl.uninstall_key(ctx.asid)
            ctx.asid = None

    def decommission(self, handle):
        """DECOMMISSION: erase the guest context (and key) for good."""
        self._check_gate("DECOMMISSION")
        ctx = self._context(handle)
        if ctx.asid is not None:
            self._memctrl.uninstall_key(ctx.asid)
        del self._contexts[handle]

    def dbg_decrypt(self, handle, pa, length):
        """DBG_DECRYPT: decrypt guest memory for a debugger.

        A legitimate operator facility — and exactly why owners set the
        NODBG policy bit: with it, the firmware refuses forever."""
        from repro.sev.state import POLICY_NODBG
        self._check_gate("DBG_DECRYPT")
        ctx = self._context(handle)
        if ctx.policy & POLICY_NODBG:
            raise SevError("POLICY_FAILURE",
                           "guest policy forbids debug decryption (NODBG)")
        raw = self._memctrl.dma_read(pa, length)
        return decrypt_region(ctx.kvek, pa, raw)

    def guest_state(self, handle):
        return self._context(handle).state

    def guest_policy(self, handle):
        return self._context(handle).policy

    def guest_asid(self, handle):
        return self._context(handle).asid

    def handles(self):
        return sorted(self._contexts)

    # -- send group (migration source / encrypted-image generation / s-dom) -------------

    def send_start(self, handle, peer_public, nonce):
        """SEND_START: stop the guest, derive a session, wrap TEK/TIK.

        The unwrap key (KEK) is the DH master secret between this
        firmware and ``peer_public`` mixed with the guest nonce; only the
        two endpoints can compute it.  Returns a :class:`WrappedKeys`.

        Refused outright for guests whose launch policy carries the
        NOSEND bit: the owner opted out of migration forever.
        """
        from repro.sev.state import POLICY_NOSEND
        self._check_gate("SEND_START")
        ctx = self._context(handle)
        if ctx.policy & POLICY_NOSEND:
            raise SevError("POLICY_FAILURE",
                           "guest policy forbids SEND (NOSEND)")
        ctx.require_state(GuestState.RUNNING)
        master = self._dh.shared_secret(peer_public, nonce)
        kek = crypto.derive_key(master, "kek")
        ctx.tek = crypto.random_key(self._rng)
        ctx.tik = crypto.random_key(self._rng)
        ctx.state = GuestState.SENDING
        ctx.reset_stream()
        return WrappedKeys(
            tek=crypto.wrap_key(kek, ctx.tek),
            tik=crypto.wrap_key(kek, ctx.tik),
        )

    def send_update(self, handle, pa, length, tweak):
        """SEND_UPDATE: decrypt [pa, pa+length) with K_vek, re-encrypt with
        the transport key under ``tweak``; returns the transport bytes."""
        self._check_gate("SEND_UPDATE")
        ctx = self._context(handle)
        ctx.require_state(GuestState.SENDING)
        raw = self._memctrl.dma_read(pa, length)
        plaintext = decrypt_region(ctx.kvek, pa, raw)
        transport = crypto.xex_encrypt(ctx.tek, b"xport|" + tweak, plaintext)
        ctx.extend_stream(transport)
        return transport

    def send_update_sectors(self, handle, pa, length, base_sector):
        """SEND_UPDATE over a scatter of 512-byte sectors in one command.

        Transport crypto is applied per sector with the absolute sector
        number as tweak, so any sector range can later be re-imported
        independently — while the command itself is batched (one memory
        transaction for the whole range), which is what makes the SEV
        I/O path competitive (Section 7.2).
        """
        from repro.common.constants import SECTOR_SIZE
        self._check_gate("SEND_UPDATE")
        ctx = self._context(handle)
        ctx.require_state(GuestState.SENDING)
        if length % SECTOR_SIZE:
            raise SevError("INVALID_LENGTH", "sector-batched update must "
                           "be sector aligned")
        raw = self._memctrl.dma_read(pa, length)
        plaintext = decrypt_region(ctx.kvek, pa, raw)
        out = bytearray()
        for i in range(length // SECTOR_SIZE):
            chunk = plaintext[i * SECTOR_SIZE:(i + 1) * SECTOR_SIZE]
            tweak = b"xport|sector|" + (base_sector + i).to_bytes(8, "little")
            out += crypto.xex_encrypt(ctx.tek, tweak, chunk)
        transport = bytes(out)
        ctx.extend_stream(transport)
        return transport

    def send_finish(self, handle):
        """SEND_FINISH: the transport-integrity measurement of the stream."""
        self._check_gate("SEND_FINISH")
        ctx = self._context(handle)
        ctx.require_state(GuestState.SENDING)
        return crypto.hmac_measure(ctx.tik, ctx.stream_digest())

    def send_cancel(self, handle):
        """SEND_CANCEL: abort an in-progress SEND.

        The transport keys are discarded and the guest returns to
        RUNNING, so a failed migration leaves the source re-enterable
        (the real API's SEND_CANCEL, added for exactly this reason).
        """
        self._check_gate("SEND_CANCEL")
        ctx = self._context(handle)
        ctx.require_state(GuestState.SENDING)
        ctx.tek = None
        ctx.tik = None
        ctx.reset_stream()
        ctx.state = GuestState.RUNNING

    # -- receive group (boot from encrypted image / migration target / r-dom) -----------

    def receive_start(self, wrapped, peer_public, nonce, share_kvek_with=None,
                      policy=0):
        """RECEIVE_START: unwrap TEK/TIK, mint a context in RECEIVING state.

        A fresh ``K_vek`` is generated unless ``share_kvek_with`` names an
        existing context (the *r-dom* of the SEV I/O path).  Returns the
        new handle.
        """
        self._check_gate("RECEIVE_START")
        self._require_init()
        master = self._dh.shared_secret(peer_public, nonce)
        kek = crypto.derive_key(master, "kek")
        try:
            tek = crypto.unwrap_key(kek, wrapped.tek)
            tik = crypto.unwrap_key(kek, wrapped.tik)
        except ValueError as exc:
            raise SevError("BAD_WRAP", str(exc))
        if share_kvek_with is not None:
            kvek = self._context(share_kvek_with).kvek
        else:
            kvek = crypto.random_key(self._rng)
        handle = self._next_handle
        self._next_handle += 1
        ctx = GuestSevContext(handle, kvek, policy)
        ctx.state = GuestState.RECEIVING
        ctx.tek = tek
        ctx.tik = tik
        ctx.reset_stream()
        self._contexts[handle] = ctx
        return handle

    def receive_update(self, handle, transport, tweak, pa):
        """RECEIVE_UPDATE: decrypt transport bytes with TEK, re-encrypt
        with K_vek in place at ``pa``."""
        self._check_gate("RECEIVE_UPDATE")
        ctx = self._context(handle)
        ctx.require_state(GuestState.RECEIVING)
        ctx.extend_stream(transport)
        plaintext = crypto.xex_decrypt(ctx.tek, b"xport|" + tweak, transport)
        self._memctrl.dma_write(pa, encrypt_region(ctx.kvek, pa, plaintext))
        return len(plaintext)

    def receive_update_sectors(self, handle, transport, base_sector, pa):
        """RECEIVE_UPDATE for a sector-batched transport buffer."""
        from repro.common.constants import SECTOR_SIZE
        self._check_gate("RECEIVE_UPDATE")
        ctx = self._context(handle)
        ctx.require_state(GuestState.RECEIVING)
        if len(transport) % SECTOR_SIZE:
            raise SevError("INVALID_LENGTH", "sector-batched update must "
                           "be sector aligned")
        ctx.extend_stream(transport)
        out = bytearray()
        for i in range(len(transport) // SECTOR_SIZE):
            chunk = transport[i * SECTOR_SIZE:(i + 1) * SECTOR_SIZE]
            tweak = b"xport|sector|" + (base_sector + i).to_bytes(8, "little")
            out += crypto.xex_decrypt(ctx.tek, tweak, chunk)
        self._memctrl.dma_write(pa, encrypt_region(ctx.kvek, pa, bytes(out)))
        return len(out)

    def receive_finish(self, handle, expected_measurement):
        """RECEIVE_FINISH: verify stream integrity, move to RUNNING."""
        self._check_gate("RECEIVE_FINISH")
        ctx = self._context(handle)
        ctx.require_state(GuestState.RECEIVING)
        actual = crypto.hmac_measure(ctx.tik, ctx.stream_digest())
        if not crypto.constant_time_equal(actual, expected_measurement):
            raise SevError("BAD_MEASUREMENT",
                           "received image fails integrity verification")
        ctx.state = GuestState.RUNNING
        return actual
