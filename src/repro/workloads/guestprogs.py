"""Realistic in-guest programs, written against the GuestContext API.

These are the "applications" of the examples and functional benchmarks:
they allocate guest memory, keep working sets, take traps and do disk
I/O — so driving one under different host configurations exercises the
whole stack, not a synthetic trace.

* :class:`KeyValueStore` — a persistent hash store with a fixed-slot
  on-disk layout over the PV block device;
* :class:`CryptoWorker` — a CPU/memory worker hashing its working set
  (a stand-in for the SPEC-style compute loop);
* :class:`SessionServer` — an interrupt-driven request loop showing the
  exit/entry path under load.
"""

import hashlib

from repro.common.constants import PAGE_SIZE, SECTOR_SIZE
from repro.common.errors import ReproError

KV_SLOTS = 64
KV_KEY_BYTES = 24
KV_VALUE_BYTES = SECTOR_SIZE - KV_KEY_BYTES - 8
_KV_USED = b"USED\x00\x00\x00\x00"


class KeyValueStore:
    """A tiny persistent KV store: one slot per disk sector.

    Slot layout (one 512-byte sector):
      [0:8)    used marker
      [8:32)   key, NUL padded
      [32:512) value, NUL padded

    The in-memory index lives in *encrypted* guest memory; the at-rest
    sectors are protected by whatever encoder the front end carries.
    """

    def __init__(self, ctx, frontend, base_sector=64, heap_gfn=10):
        self.ctx = ctx
        self.frontend = frontend
        self.base_sector = base_sector
        self.heap_gfn = heap_gfn
        ctx.set_page_encrypted(heap_gfn)
        self._index = {}

    @staticmethod
    def _pack_key(key):
        if len(key) > KV_KEY_BYTES:
            raise ReproError("key longer than %d bytes" % KV_KEY_BYTES)
        return key + bytes(KV_KEY_BYTES - len(key))

    def _slot_of(self, key):
        if key in self._index:
            return self._index[key]
        if len(self._index) >= KV_SLOTS:
            raise ReproError("store full")
        slot = len(self._index)
        self._index[key] = slot
        return slot

    def put(self, key, value):
        if len(value) > KV_VALUE_BYTES:
            raise ReproError("value too large for one slot")
        slot = self._slot_of(key)
        record = _KV_USED + self._pack_key(key) + value \
            + bytes(KV_VALUE_BYTES - len(value))
        # stage the record in encrypted memory first (working set)
        self.ctx.write(self.heap_gfn * PAGE_SIZE, record)
        self.frontend.write(self.base_sector + slot, record)
        return slot

    def get(self, key):
        slot = self._index.get(key)
        if slot is None:
            return None
        record = self.frontend.read(self.base_sector + slot, 1)
        if record[:8] != _KV_USED:
            return None
        stored_key = record[8:8 + KV_KEY_BYTES].rstrip(b"\x00")
        if stored_key != key:
            raise ReproError("index/disk mismatch for %r" % key)
        return record[8 + KV_KEY_BYTES:].rstrip(b"\x00")

    def recover_index(self):
        """Rebuild the index by scanning the disk (after restore or
        migration, where only memory+disk move, not Python state)."""
        self._index = {}
        for slot in range(KV_SLOTS):
            record = self.frontend.read(self.base_sector + slot, 1)
            if record[:8] == _KV_USED:
                key = record[8:8 + KV_KEY_BYTES].rstrip(b"\x00")
                self._index[key] = slot
        return len(self._index)


class CryptoWorker:
    """A compute worker: hashes and rewrites a working set in guest
    memory.  Memory-intensity is tunable via the working-set size."""

    def __init__(self, ctx, first_gfn=16, pages=8, encrypted=True,
                 batched=False):
        self.ctx = ctx
        self.first_gfn = first_gfn
        self.pages = pages
        self.batched = batched
        for gfn in range(first_gfn, first_gfn + pages):
            if encrypted:
                ctx.set_page_encrypted(gfn)
            ctx.write(gfn * PAGE_SIZE, bytes(range(256)) * (PAGE_SIZE // 256))

    def round(self):
        """One work round: hash every page and write the digest back.

        With ``batched=True`` the round is phrased as two span-level
        :meth:`~repro.xen.domain.GuestContext.batch` calls (hash all
        pages, then write all digests back) instead of two context
        calls per page.  The bytes written and the final digest are
        identical either way; the *cycle ledger* may differ from the
        interleaved per-access order when the working set fits in the
        line cache, because reads happen in a different order relative
        to the writes — so equivalence checks compare batched against
        batched (or per-access against a per-page-ordered batch).
        """
        first_gpa = self.first_gfn * PAGE_SIZE
        gpas = [first_gpa + i * PAGE_SIZE for i in range(self.pages)]
        if self.batched:
            # One span read covers the whole working set: within a
            # round each write lands on a page already read, so the
            # bytes (and digests) match the per-page interleaving.
            span = self.ctx.batch(
                [("r", first_gpa, self.pages * PAGE_SIZE)])[0]
            digests = [
                hashlib.sha256(span[off:off + PAGE_SIZE]).digest()
                for off in range(0, self.pages * PAGE_SIZE, PAGE_SIZE)]
            self.ctx.batch(
                [("w", gpa, digest) for gpa, digest
                 in zip(gpas, digests)])
        else:
            digests = []
            for gpa in gpas:
                page = self.ctx.read(gpa, PAGE_SIZE)
                digest = hashlib.sha256(page).digest()
                self.ctx.write(gpa, digest)
                digests.append(digest)
        return hashlib.sha256(b"".join(digests)).hexdigest()

    def run(self, rounds):
        last = None
        for _ in range(rounds):
            last = self.round()
        return last


class SessionServer:
    """An exit-heavy request loop: every request costs one hypercall
    round trip plus bookkeeping in encrypted memory."""

    def __init__(self, ctx, state_gfn=30):
        self.ctx = ctx
        self.state_gfn = state_gfn
        ctx.set_page_encrypted(state_gfn)
        ctx.write(state_gfn * PAGE_SIZE, (0).to_bytes(8, "little"))

    @property
    def handled(self):
        return int.from_bytes(
            self.ctx.read(self.state_gfn * PAGE_SIZE, 8), "little")

    def handle_request(self):
        from repro.xen import hypercalls as hc
        count = self.handled + 1
        self.ctx.write(self.state_gfn * PAGE_SIZE,
                       count.to_bytes(8, "little"))
        self.ctx.hypercall(hc.HC_VOID)  # "respond" through the host
        return count

    def serve(self, requests):
        for _ in range(requests):
            self.handle_request()
        return self.handled
