"""A fio-style block-I/O load generator over the real PV stack
(Table 3 of the paper).

The runner drives the actual front-end / back-end / disk path of the
simulated host — VM exits, shadowing, gates, grant-mapped buffers and
the I/O encoder all charge their real cycle costs — and adds a disk
*device* timing model on top (sequential streaming vs seek-dominated
random access).  Throughput is bytes per total cycles; the benchmark
compares a plain-Xen run against a Fidelius + AES-NI run, exactly like
the paper's Table 3.
"""

from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE, SECTOR_SIZE

#: Device model: a random access pays a seek; streaming costs per byte.
DISK_SEEK_CYCLES = 150_000
DISK_TRANSFER_CPB = 0.8


@dataclass(frozen=True)
class FioSpec:
    """One fio job, mirroring the paper's four configurations."""

    name: str
    pattern: str       # "seq" | "rand"
    op: str            # "read" | "write"
    block_bytes: int
    ops: int

    @property
    def sectors_per_op(self):
        return self.block_bytes // SECTOR_SIZE

    @property
    def total_bytes(self):
        return self.block_bytes * self.ops


#: The four rows of Table 3.  Sequential jobs stream large blocks;
#: random jobs issue 4 KiB blocks across the whole disk.
TABLE3_SPECS = [
    FioSpec("rand-read", "rand", "read", 4096, ops=60),
    FioSpec("seq-read", "seq", "read", 16 * PAGE_SIZE, ops=40),
    FioSpec("rand-write", "rand", "write", 4096, ops=60),
    FioSpec("seq-write", "seq", "write", 16 * PAGE_SIZE, ops=40),
]


class DiskTimingModel:
    """Charges device time for each request."""

    def __init__(self, cycles):
        self._cycles = cycles
        self._head = 0

    def request(self, sector, nbytes, pattern):
        cost = int(nbytes * DISK_TRANSFER_CPB)
        if pattern == "rand" and sector != self._head:
            cost += DISK_SEEK_CYCLES
        self._head = sector + nbytes // SECTOR_SIZE
        self._cycles.charge(cost, "disk-device")


class FioRunner:
    """Runs fio jobs against one attached block device."""

    def __init__(self, system, domain, ctx, encoder=None, seed=0xF10):
        import random
        self.system = system
        self.rng = random.Random(seed)
        buffer_pages = max(spec.block_bytes for spec in TABLE3_SPECS) \
            // PAGE_SIZE
        self.disk, self.frontend, self.backend = system.attach_disk(
            domain, ctx, sectors=16384, encoder=encoder,
            buffer_pages=buffer_pages)
        self.device = DiskTimingModel(system.machine.cycles)

    def _sector_for(self, spec, index):
        span = self.disk.sectors - spec.sectors_per_op
        if spec.pattern == "seq":
            return (index * spec.sectors_per_op) % span
        return self.rng.randrange(0, span)

    def run(self, spec):
        """Execute one job; returns total cycles consumed."""
        cycles = self.system.machine.cycles
        payload = bytes(self.rng.getrandbits(8)
                        for _ in range(spec.block_bytes))
        start = cycles.snapshot()
        for index in range(spec.ops):
            sector = self._sector_for(spec, index)
            self.device.request(sector, spec.block_bytes, spec.pattern)
            if spec.op == "write":
                self.frontend.write(sector, payload)
            else:
                self.frontend.read(sector, spec.sectors_per_op)
        return cycles.since(start)

    def throughput(self, spec):
        """Bytes per kilocycle — the comparable throughput figure."""
        total_cycles = self.run(spec)
        return 1000.0 * spec.total_bytes / total_cycles
