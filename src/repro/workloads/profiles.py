"""Per-benchmark workload characterizations.

Each profile captures what the trace-driven model needs:

* ``cpi_core`` — baseline cycles per instruction with the memory
  hierarchy folded in up to the last-level cache (typical superscalar
  figures for the suite);
* ``mpki_dram`` — *effective* DRAM-stall misses per kilo-instruction.
  These are calibrated to the sensitivity the paper's Figure 5/6 bars
  exhibit on the authors' Ryzen: they sit within published LLC-MPKI
  characterizations for the memory-bound programs (mcf ~80+, omnetpp
  ~30, canneal ~13) and fold prefetcher effectiveness in for the
  streaming ones (libquantum's raw LLC MPKI is high but its stalls are
  largely hidden);
* ``mem_pki`` — memory accesses per kilo-instruction, used by the trace
  generator (the miss *ratio* it must reproduce is mpki/mem_pki);
* ``vmexit_pki`` / ``npt_update_pki`` — host-interaction rates, the
  source of the (small) Fidelius-without-encryption overhead: each exit
  costs one shadow+check round trip, each NPT update one type 1 gate.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    name: str
    suite: str
    cpi_core: float
    mpki_dram: float
    mem_pki: float = 300.0
    vmexit_pki: float = 0.01
    npt_update_pki: float = 0.001

    @property
    def miss_ratio(self):
        """Fraction of memory accesses that go to DRAM."""
        return min(1.0, self.mpki_dram / self.mem_pki)


def _spec(name, cpi, mpki, vmexit=0.010):
    return BenchmarkProfile(name, "speccpu2006", cpi, mpki,
                            vmexit_pki=vmexit)


def _parsec(name, cpi, mpki, vmexit=0.0035):
    return BenchmarkProfile(name, "parsec", cpi, mpki, vmexit_pki=vmexit)


#: The SPECCPU 2006 C programs of Figure 5.
SPEC_PROFILES = [
    _spec("perlbench", 0.60, 0.65),
    _spec("bzip2", 0.55, 0.08),
    _spec("gcc", 0.65, 2.07),
    _spec("mcf", 0.70, 86.5),
    _spec("gobmk", 0.60, 0.40),
    _spec("hmmer", 0.50, 0.03),
    _spec("sjeng", 0.58, 0.17),
    _spec("libquantum", 0.52, 0.82),
    _spec("h264ref", 0.50, 0.07),
    _spec("omnetpp", 0.62, 29.7),
    _spec("astar", 0.62, 1.55),
]

#: The PARSEC benchmarks of Figure 6.
PARSEC_PROFILES = [
    _parsec("blackscholes", 0.55, 0.03),
    _parsec("bodytrack", 0.60, 0.10),
    _parsec("canneal", 0.70, 13.4),
    _parsec("dedup", 0.62, 0.28, vmexit=0.008),
    _parsec("facesim", 0.65, 0.23),
    _parsec("ferret", 0.62, 0.14),
    _parsec("fluidanimate", 0.60, 0.18),
    _parsec("freqmine", 0.58, 0.12),
    _parsec("raytrace", 0.58, 0.07),
    _parsec("streamcluster", 0.60, 0.48),
    _parsec("swaptions", 0.52, 0.02),
    _parsec("vips", 0.60, 0.16, vmexit=0.008),
    _parsec("x264", 0.55, 0.08, vmexit=0.008),
]


def profile_by_name(name):
    for profile in SPEC_PROFILES + PARSEC_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError("no profile named %r" % (name,))
