"""Workload models driving the performance evaluation (Section 7).

* :mod:`repro.workloads.profiles` — per-benchmark characterizations of
  the SPECCPU 2006 C programs (Figure 5) and the PARSEC suite
  (Figure 6);
* :mod:`repro.workloads.tracegen` — a synthetic memory-trace generator
  plus a cache model, so the macro numbers are produced by *simulated
  misses*, not plugged-in percentages;
* :mod:`repro.workloads.fio` — a fio-style block-I/O load generator and
  disk-device timing model for Table 3.
"""

from repro.workloads.fio import DiskTimingModel, FioRunner, FioSpec, TABLE3_SPECS
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC_PROFILES,
    BenchmarkProfile,
)
from repro.workloads.tracegen import (
    CacheModel,
    generate_span_trace,
    generate_trace,
    simulate_misses,
)

__all__ = [
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "PARSEC_PROFILES",
    "CacheModel",
    "generate_span_trace",
    "generate_trace",
    "simulate_misses",
    "FioRunner",
    "FioSpec",
    "DiskTimingModel",
    "TABLE3_SPECS",
]
