"""Synthetic memory-trace generation and a last-level cache model.

The macro evaluation does not plug the paper's percentages in: it
generates an address trace whose *re-use behaviour* matches the
benchmark profile, runs it through an LRU cache, and derives cycle
counts from the *measured* miss count.  A profile whose miss ratio was
mischaracterized would show up as a wrong figure, not a silently
matching one.
"""

import random

from repro.common.constants import CACHE_LINE_SHIFT


class CacheModel:
    """A set of LRU cache lines (the last level before DRAM)."""

    def __init__(self, lines=4096):
        self.lines = lines
        self._order = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address):
        """True if the access misses to DRAM."""
        line = address >> CACHE_LINE_SHIFT
        self._tick += 1
        if line in self._order:
            self._order[line] = self._tick
            self.hits += 1
            return False
        self.misses += 1
        if len(self._order) >= self.lines:
            victim = min(self._order, key=self._order.get)
            del self._order[victim]
        self._order[line] = self._tick
        return True

    def access_span(self, address, length):
        """Access every line of the contiguous ``[address, address +
        length)`` range in ascending order; returns the DRAM misses.

        *Defined* to equal ``length >> CACHE_LINE_SHIFT`` individual
        :meth:`access` calls — same hits, misses, tick sequence and
        victim choices (a line evicted by an earlier miss of the same
        span misses again when the span reaches it, exactly as it would
        per-access).  The batching saves the per-access Python call and
        attribute traffic, which is what the span-level trace format
        exists for.
        """
        first = address >> CACHE_LINE_SHIFT
        last = (address + length - 1) >> CACHE_LINE_SHIFT
        order = self._order
        tick = self._tick
        lines = self.lines
        hits = 0
        misses = 0
        for line in range(first, last + 1):
            tick += 1
            if line in order:
                order[line] = tick
                hits += 1
                continue
            misses += 1
            if len(order) >= lines:
                victim = min(order, key=order.get)
                del order[victim]
            order[line] = tick
        self._tick = tick
        self.hits += hits
        self.misses += misses
        return misses

    @property
    def miss_ratio(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def generate_trace(profile, accesses, seed=0xACE5):
    """An address trace with the profile's DRAM miss ratio.

    Hot lines (a working set that fits the cache) model the re-used
    data; a monotonically advancing streaming region models the traffic
    that must go to DRAM.  The split is the profile's miss ratio, so the
    cache measurement converges on the characterized MPKI.
    """
    rng = random.Random(seed)
    miss_ratio = profile.miss_ratio
    hot_lines = 1024
    streaming_cursor = 1 << 30  # far above the hot region
    trace = []
    for _ in range(accesses):
        if rng.random() < miss_ratio:
            streaming_cursor += 1 << CACHE_LINE_SHIFT
            trace.append(streaming_cursor)
        else:
            trace.append(rng.randrange(hot_lines) << CACHE_LINE_SHIFT)
    return trace


def generate_span_trace(profile, accesses, seed=0xACE5):
    """The span-level form of :func:`generate_trace`.

    Same RNG, same decisions, same line sequence — but consecutive
    streaming accesses (which advance the cursor one line at a time,
    i.e. are physically contiguous) are coalesced into one
    ``(address, length)`` span, and each hot access becomes a one-line
    span.  Flattening the spans line by line reproduces
    :func:`generate_trace` exactly; batched consumers get one
    :meth:`CacheModel.access_span` call per span instead of one
    :meth:`CacheModel.access` call per line.
    """
    rng = random.Random(seed)
    miss_ratio = profile.miss_ratio
    hot_lines = 1024
    line_bytes = 1 << CACHE_LINE_SHIFT
    streaming_cursor = 1 << 30  # far above the hot region
    spans = []
    run_start = 0
    run_len = 0
    for _ in range(accesses):
        if rng.random() < miss_ratio:
            streaming_cursor += line_bytes
            if run_len:
                run_len += 1
            else:
                run_start = streaming_cursor
                run_len = 1
        else:
            if run_len:
                spans.append((run_start, run_len * line_bytes))
                run_len = 0
            spans.append((rng.randrange(hot_lines) << CACHE_LINE_SHIFT,
                          line_bytes))
    if run_len:
        spans.append((run_start, run_len * line_bytes))
    return spans


def simulate_misses(profile, accesses=60_000, seed=0xACE5, cache_lines=4096,
                    batched=True):
    """Run the trace through the cache; returns (misses, accesses).

    ``batched`` selects the span-level trace and
    :meth:`CacheModel.access_span`; both paths are exactly equivalent
    (the differential test pins it), the batched one just spends fewer
    Python calls getting there.
    """
    cache = CacheModel(lines=cache_lines)
    # Warm the hot working set so compulsory misses don't distort the
    # steady-state miss ratio of low-MPKI benchmarks.
    for line in range(1024):
        cache.access(line << CACHE_LINE_SHIFT)
    cache.hits = 0
    cache.misses = 0
    if batched:
        for address, length in generate_span_trace(profile, accesses,
                                                   seed=seed):
            cache.access_span(address, length)
    else:
        for address in generate_trace(profile, accesses, seed=seed):
            cache.access(address)
    return cache.misses, accesses
