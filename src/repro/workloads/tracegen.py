"""Synthetic memory-trace generation and a last-level cache model.

The macro evaluation does not plug the paper's percentages in: it
generates an address trace whose *re-use behaviour* matches the
benchmark profile, runs it through an LRU cache, and derives cycle
counts from the *measured* miss count.  A profile whose miss ratio was
mischaracterized would show up as a wrong figure, not a silently
matching one.
"""

import random

from repro.common.constants import CACHE_LINE_SHIFT


class CacheModel:
    """A set of LRU cache lines (the last level before DRAM)."""

    def __init__(self, lines=4096):
        self.lines = lines
        self._order = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address):
        """True if the access misses to DRAM."""
        line = address >> CACHE_LINE_SHIFT
        self._tick += 1
        if line in self._order:
            self._order[line] = self._tick
            self.hits += 1
            return False
        self.misses += 1
        if len(self._order) >= self.lines:
            victim = min(self._order, key=self._order.get)
            del self._order[victim]
        self._order[line] = self._tick
        return True

    @property
    def miss_ratio(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def generate_trace(profile, accesses, seed=0xACE5):
    """An address trace with the profile's DRAM miss ratio.

    Hot lines (a working set that fits the cache) model the re-used
    data; a monotonically advancing streaming region models the traffic
    that must go to DRAM.  The split is the profile's miss ratio, so the
    cache measurement converges on the characterized MPKI.
    """
    rng = random.Random(seed)
    miss_ratio = profile.miss_ratio
    hot_lines = 1024
    streaming_cursor = 1 << 30  # far above the hot region
    trace = []
    for _ in range(accesses):
        if rng.random() < miss_ratio:
            streaming_cursor += 1 << CACHE_LINE_SHIFT
            trace.append(streaming_cursor)
        else:
            trace.append(rng.randrange(hot_lines) << CACHE_LINE_SHIFT)
    return trace


def simulate_misses(profile, accesses=60_000, seed=0xACE5, cache_lines=4096):
    """Run the trace through the cache; returns (misses, accesses)."""
    cache = CacheModel(lines=cache_lines)
    # Warm the hot working set so compulsory misses don't distort the
    # steady-state miss ratio of low-MPKI benchmarks.
    for line in range(1024):
        cache.access(line << CACHE_LINE_SHIFT)
    cache.hits = 0
    cache.misses = 0
    for address in generate_trace(profile, accesses, seed=seed):
        cache.access(address)
    return cache.misses, accesses
