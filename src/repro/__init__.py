"""Fidelius reproduction: comprehensive VM protection against an
untrusted hypervisor through retrofitted AMD memory encryption
(Wu et al., HPCA 2018), on a fully simulated AMD-V/SEV/Xen substrate.

Quickstart::

    from repro import System, GuestOwner

    system = System.create(fidelius=True)
    owner = GuestOwner(seed=7)
    domain, ctx = system.boot_protected_guest("vm", owner,
                                              payload=b"app code")
    ctx.set_page_encrypted(5)
    ctx.write(5 * 4096, b"secret")          # encrypted with K_vek
    encoder = system.aesni_encoder_for(ctx)  # K_blk from the kernel image
    disk, fe, be = system.attach_disk(domain, ctx, encoder=encoder)
    fe.write(0, b"protected file")           # ciphertext on the wire

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import Fidelius
from repro.core.lifecycle import GuestOwner
from repro.hw import Machine
from repro.sev import SevFirmware
from repro.system import System, paired_systems
from repro.xen import Hypervisor

__version__ = "1.0.0"

__all__ = [
    "System",
    "GuestOwner",
    "paired_systems",
    "Fidelius",
    "Machine",
    "SevFirmware",
    "Hypervisor",
    "__version__",
]
