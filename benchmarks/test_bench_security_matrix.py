"""E9 — Section 6: the attack-by-attack security matrix.

Every attack runs against a fresh SEV-only baseline host and a fresh
Fidelius host; the benchmark asserts the paper's claim structure (every
surface exists on the baseline, every software-stoppable attack is
blocked by Fidelius) and reports the matrix.
"""

from repro.attacks import format_matrix, run_matrix

PAPER = {
    "fidelius_blocks_all_software_attacks": True,
    "conceded_to_hardware": ["dma-ciphertext-replay", "rowhammer-bit-flip"],
}


def test_bench_security_matrix(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        row.name: {"baseline": row.baseline_succeeded,
                   "fidelius": row.fidelius_succeeded}
        for row in rows
    }
    print()
    print(format_matrix(rows))
    assert all(row.as_expected for row in rows)
    surviving = [row.name for row in rows if row.fidelius_succeeded]
    assert sorted(surviving) == sorted(PAPER["conceded_to_hardware"])
