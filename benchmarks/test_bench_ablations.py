"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — gate design: the type 1 WP-toggle gate vs the rejected full-CR3
     switch per transition (Section 4.1.3).
A2 — VMCB shadowing vs strict write-protection: count the hypervisor's
     actual VMCB field accesses per exit; strict protection would pay a
     gate crossing for each, shadowing pays one flat 661-cycle round
     trip (Section 5.1's rationale).
A3 — batched NPT prepopulation vs lazy fill (Section 4.3.4): where the
     gate crossings land.
A4 — the three I/O encoders on the worst-case job (seq-read).
"""

import pytest

from repro.common.constants import GATE1_CYCLES, SHADOW_CHECK_CYCLES
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


def test_bench_a1_gate_vs_cr3_switch(benchmark):
    system = System.create(fidelius=True, frames=2048, seed=0xAB1)
    fid = system.fidelius
    cycles = system.machine.cycles

    def transitions():
        snap = cycles.snapshot()
        for _ in range(200):
            with fid.gates.type1():
                pass
        gate1 = cycles.since(snap) / 200
        snap = cycles.snapshot()
        for _ in range(200):
            with fid.gates.cr3_switch_transition():
                pass
        cr3 = cycles.since(snap) / 200
        return gate1, cr3

    gate1, cr3 = benchmark.pedantic(transitions, rounds=3, iterations=1)
    benchmark.extra_info["measured"] = {
        "type1_gate": gate1, "cr3_switch": cr3, "ratio": round(cr3 / gate1, 2)}
    print("\nA1: type 1 gate %.0f cycles vs CR3 switch %.0f cycles (%.1fx)"
          % (gate1, cr3, cr3 / gate1))
    assert cr3 > 5 * gate1


def test_bench_a2_shadow_vs_strict_write_protect(benchmark):
    """Count real VMCB accesses during one hypercall service."""
    system = System.create(fidelius=False, frames=2048, seed=0xAB2)
    domain, ctx = system.create_plain_guest("probe", guest_frames=16)
    vmcb = domain.vcpu0.vmcb
    counter = {"accesses": 0}
    original_read, original_write = vmcb.read, vmcb.write

    def counting_read(name):
        counter["accesses"] += 1
        return original_read(name)

    def counting_write(name, value):
        counter["accesses"] += 1
        return original_write(name, value)

    def measure():
        counter["accesses"] = 0
        vmcb.read_patched = True
        vmcb.read, vmcb.write = counting_read, counting_write
        try:
            ctx.hypercall(hc.HC_VOID)
        finally:
            vmcb.read, vmcb.write = original_read, original_write
        return counter["accesses"]

    accesses = benchmark.pedantic(measure, rounds=3, iterations=1)
    strict_cost = accesses * GATE1_CYCLES
    benchmark.extra_info["measured"] = {
        "vmcb_accesses_per_exit": accesses,
        "strict_write_protect_cycles": strict_cost,
        "shadowing_cycles": SHADOW_CHECK_CYCLES,
    }
    print("\nA2: %d VMCB accesses/exit -> strict WP would cost %d cycles; "
          "shadowing costs %d" % (accesses, strict_cost, SHADOW_CHECK_CYCLES))
    assert strict_cost > SHADOW_CHECK_CYCLES


def test_bench_a3_prepopulated_vs_lazy_npt(benchmark):
    def run(lazy):
        system = System.create(fidelius=True, frames=4096, seed=0xAB3,
                               lazy_npt=lazy)
        cycles = system.machine.cycles
        boot_snap = cycles.snapshot()
        domain, ctx = system.create_plain_guest("g", guest_frames=128)
        boot = cycles.since(boot_snap)
        run_snap = cycles.snapshot()
        for gfn in range(domain.guest_frames):
            ctx.write(gfn * 4096, b"t")
        runtime = cycles.since(run_snap)
        runtime_npf = run_snap.delta(cycles).get("npt-fill", 0)
        return boot, runtime, runtime_npf

    def both():
        return run(lazy=False), run(lazy=True)

    (pre_boot, pre_run, pre_npf), (lazy_boot, lazy_run, lazy_npf) = \
        benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = {
        "prepopulated": {"boot": pre_boot, "runtime": pre_run,
                         "runtime_npt_fill": pre_npf},
        "lazy": {"boot": lazy_boot, "runtime": lazy_run,
                 "runtime_npt_fill": lazy_npf},
    }
    print("\nA3: prepopulated boot=%d runtime=%d (npf=%d); "
          "lazy boot=%d runtime=%d (npf=%d)"
          % (pre_boot, pre_run, pre_npf, lazy_boot, lazy_run, lazy_npf))
    # Xen's default batched prepopulation: no runtime NPT faults at all,
    # while the lazy design pays gates + fills on the hot path.
    assert pre_npf == 0
    assert lazy_npf > 0
    assert lazy_run > pre_run


def test_bench_a5_software_shadow_vs_es_hardware(benchmark):
    """A5 — the cost the paper pays for SEV-ES not existing yet: the
    void-hypercall round trip with software shadowing vs on ES hardware
    (Fidelius keeps everything else in both)."""
    def roundtrip(sev_es):
        system = System.create(fidelius=True, frames=2048, seed=0xAB5,
                               sev_es=sev_es)
        owner = GuestOwner(seed=0xAB5)
        _, ctx = system.boot_protected_guest("b", owner, payload=b"x",
                                             guest_frames=32)
        ctx._ensure_guest()
        cycles = system.machine.cycles
        snapshot = cycles.snapshot()
        for _ in range(100):
            ctx.hypercall(hc.HC_VOID)
        return cycles.since(snapshot) / 100

    def both():
        return roundtrip(False), roundtrip(True)

    software, hardware = benchmark.pedantic(both, rounds=2, iterations=1)
    benchmark.extra_info["measured"] = {
        "software_shadow_roundtrip": software,
        "es_hardware_roundtrip": hardware,
        "saved_cycles": software - hardware,
    }
    print("\nA5: void hypercall %d cycles with software shadowing, "
          "%d on ES hardware (saves %d)"
          % (software, hardware, software - hardware))
    assert 600 < software - hardware < 720  # the 661-cycle shadow cost


def test_bench_a4_io_encoder_comparison(benchmark):
    from repro.core.io_protect import SoftwareIoEncoder
    from repro.workloads.fio import FioRunner, TABLE3_SPECS

    seq_read = next(s for s in TABLE3_SPECS if s.name == "seq-read")

    def throughput(encoder_kind):
        system = System.create(fidelius=True, frames=4096, seed=0xAB4)
        owner = GuestOwner(seed=0xAB4)
        domain, ctx = system.boot_protected_guest(
            "fio", owner, payload=b"x", guest_frames=96)
        if encoder_kind == "aes-ni":
            encoder = system.aesni_encoder_for(ctx)
        elif encoder_kind == "sev-api":
            encoder = system.sev_encoder_for(domain, ctx, pages=16)
        else:
            from repro.core.lifecycle import read_embedded_kblk
            encoder = SoftwareIoEncoder(read_embedded_kblk(ctx),
                                        system.machine.cycles)
        return FioRunner(system, domain, ctx, encoder=encoder,
                         seed=0xAB4).throughput(seq_read)

    def sweep():
        return {kind: throughput(kind)
                for kind in ("aes-ni", "sev-api", "software")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = results
    print("\nA4 seq-read throughput (B/kcyc): %s"
          % {k: round(v, 1) for k, v in results.items()})
    # software crypto is catastrophic; the SEV path is competitive with
    # AES-NI (the paper's argument for it on AES-NI-less parts)
    assert results["software"] < 0.5 * results["aes-ni"]
    assert results["sev-api"] > 0.5 * results["aes-ni"]
