"""E8 — Tables 1 and 2: the permission and instruction matrices,
observed by probing a running Fidelius host."""

from repro.eval import permission_matrix, priv_instruction_matrix
from repro.eval.tables import (
    format_instruction_matrix,
    format_permission_matrix,
)

PAPER_TABLE1 = {
    "Page tables (Xen)": "read-only",
    "NPT (guest VM)": "read-only",
    "Grant tables": "read-only",
    "Page info table": "read-only",
    "Grant info table": "read-only",
    "Shadow states": "no access",
    "SEV metadata": "no access",
}


def test_bench_permission_matrix(benchmark):
    rows = benchmark.pedantic(permission_matrix, rounds=2, iterations=1)
    measured = {r.resource: r.xen_permission for r in rows}
    benchmark.extra_info["paper"] = PAPER_TABLE1
    benchmark.extra_info["measured"] = measured
    print()
    print(format_permission_matrix(rows))
    assert measured == PAPER_TABLE1


def test_bench_instruction_matrix(benchmark):
    rows = benchmark.pedantic(priv_instruction_matrix, rounds=2, iterations=1)
    benchmark.extra_info["measured"] = {
        r.instruction: r.observed for r in rows}
    print()
    print(format_instruction_matrix(rows))
    observed = {r.instruction: r.observed for r in rows}
    assert observed["mov-cr0"] == "executable"
    assert "inaccessible" in observed["vmrun"]
    assert "inaccessible" in observed["mov-cr3"]
