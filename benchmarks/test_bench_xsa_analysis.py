"""E7 — Section 6.2: the XSA quantitative analysis.

Paper: of 235 XSAs, 177 are hypervisor-related; Fidelius thwarts
31 (17.5%) privilege escalations and 22 (12.4%) information leaks;
14 (7.9%) are guest-internal flaws; the rest are DoS.
"""

from repro.attacks import analyze_xsa, build_corpus
from repro.eval.tables import format_xsa

PAPER = {"total": 235, "hypervisor": 177, "priv_esc": 31, "info_leak": 22,
         "guest_internal": 14}


def test_bench_xsa_analysis(benchmark):
    stats = benchmark(lambda: analyze_xsa(build_corpus()))
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = stats
    print()
    print(format_xsa(stats))
    assert stats["hypervisor_related"] == PAPER["hypervisor"]
    assert stats["privilege_escalation_thwarted"] == PAPER["priv_esc"]
    assert stats["info_leak_thwarted"] == PAPER["info_leak"]
