"""E5 — micro benchmark 2: shadowing cost.

Paper (Section 7.2): a void hypercall from a guest kernel module shows
the shadow + check round trip costs 661 cycles on average.
"""

from repro.eval import shadow_cost_benchmark
from repro.eval.tables import format_shadow_costs

PAPER = {"shadow_check": 661}


def test_bench_shadow_cost(benchmark):
    costs = benchmark.pedantic(
        lambda: shadow_cost_benchmark(iterations=200),
        rounds=3, iterations=1)
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        "shadow_check": costs.shadow_check_cycles,
        "protected_roundtrip": costs.protected_roundtrip_cycles,
        "unprotected_roundtrip": costs.unprotected_roundtrip_cycles,
    }
    print()
    print(format_shadow_costs(costs))
    assert abs(costs.shadow_check_cycles - PAPER["shadow_check"]) < 2
