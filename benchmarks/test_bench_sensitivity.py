"""Sensitivity sweeps: robustness of the reproduced conclusions to the
calibration constants (not a paper artefact — a reproduction check)."""

from repro.eval.sensitivity import (
    encryption_latency_sweep,
    exit_rate_sweep,
    format_exit_rate_sweep,
    format_latency_sweep,
    shape_is_robust,
)


def test_bench_sensitivity(benchmark):
    def sweep():
        return encryption_latency_sweep(), exit_rate_sweep()

    latency, rate = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = {
        "latency_sweep": {
            name: [(p.x, round(p.overhead_pct, 2)) for p in series]
            for name, series in latency.items()},
        "exit_rate_sweep": [(p.x, round(p.overhead_pct, 2)) for p in rate],
    }
    print()
    print(format_latency_sweep(latency))
    print()
    print(format_exit_rate_sweep(rate))
    assert shape_is_robust(latency)
