"""E6 — micro benchmark 3: I/O encryption engines.

Paper (Section 7.2): on an in-guest 512 MB copy, AES-NI costs +11.49%,
the SME/SEV engine +8.69%, and software-emulated encryption over 20x —
"the SEV based I/O protection is more attractive considering its
efficiency".
"""

from repro.eval import crypto_copy_benchmark
from repro.eval.tables import format_crypto_costs

PAPER = {"aesni_pct": 11.49, "sev_pct": 8.69, "software_x": 20.0}


def test_bench_crypto_copy(benchmark):
    costs = benchmark.pedantic(
        lambda: crypto_copy_benchmark(megabytes=512),
        rounds=3, iterations=1)
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        "aesni_pct": round(costs.aesni_slowdown_pct, 2),
        "sev_pct": round(costs.sev_engine_slowdown_pct, 2),
        "software_x": round(costs.software_slowdown_x, 2),
    }
    print()
    print(format_crypto_costs(costs))
    assert abs(costs.aesni_slowdown_pct - PAPER["aesni_pct"]) < 0.5
    assert costs.sev_engine_slowdown_pct < costs.aesni_slowdown_pct
    assert costs.software_slowdown_x > PAPER["software_x"]
