"""Functional cross-check benchmark: measured cycles through the full
stack agree with the analytic model's story (not a paper artefact — a
reproduction self-check)."""

from repro.eval.functional import format_functional, run_functional


def test_bench_functional_crosscheck(benchmark):
    results = benchmark.pedantic(
        lambda: run_functional(rounds=4, requests=40),
        rounds=2, iterations=1)
    benchmark.extra_info["measured"] = {
        r.workload: round(r.overhead_pct, 2) for r in results}
    print()
    print(format_functional(results))
    compute = next(r for r in results if "compute" in r.workload)
    server = next(r for r in results if "exit-heavy" in r.workload)
    assert compute.overhead_pct < 2.0
    assert server.overhead_pct > compute.overhead_pct
