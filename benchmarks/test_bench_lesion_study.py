"""Lesion-study benchmark: each Fidelius mechanism is load-bearing.

Not a paper artefact — an ablation DESIGN.md calls for: disabling one
mechanism at a time re-opens exactly the attack that mechanism stops.
"""

from repro.attacks import ALL_ATTACKS
from repro.attacks.lesions import LESION_CATALOG, apply_lesion
from repro.system import System

_BY_NAME = {fn.attack_name: fn for fn in ALL_ATTACKS}


def test_bench_lesion_study(benchmark):
    def study():
        outcomes = {}
        for index, (lesion, (_, attack_name)) in enumerate(
                sorted(LESION_CATALOG.items())):
            system = apply_lesion(
                System.create(fidelius=True, frames=2048,
                              seed=0xAB5 + index), lesion)
            result = _BY_NAME[attack_name](system)
            outcomes[lesion] = {
                "attack": attack_name,
                "broke_through": result.succeeded,
            }
        return outcomes

    outcomes = benchmark.pedantic(study, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = outcomes
    print()
    print("%-24s %-30s %s" % ("lesion", "attack", "broke through"))
    print("-" * 68)
    for lesion, info in outcomes.items():
        print("%-24s %-30s %s" % (lesion, info["attack"],
                                  info["broke_through"]))
    assert all(info["broke_through"] for info in outcomes.values())
