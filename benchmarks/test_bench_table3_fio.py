"""E3 — Table 3: fio over the PV block path, Xen vs Fidelius AES-NI.

Paper: rand-read 1.38%, seq-read 22.91%, rand-write 0.70%,
seq-write 3.61%.
"""

from repro.eval import run_table3
from repro.eval.tables import format_table3

PAPER = {"rand-read": 1.38, "seq-read": 22.91,
         "rand-write": 0.70, "seq-write": 3.61}


def test_bench_table3(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=2, iterations=1)
    measured = {r.name: round(r.slowdown_pct, 2) for r in rows}
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = measured
    print()
    print(format_table3(rows))
    assert measured["seq-read"] == max(measured.values())
    assert measured["rand-write"] == min(measured.values())
