"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) and attaches the measured rows to
``benchmark.extra_info`` so the JSON output records paper-vs-measured.
"""
