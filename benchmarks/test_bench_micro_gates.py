"""E4 — micro benchmark 1: gate transition costs.

Paper (Section 7.2): type 1 gate 306 cycles, type 2 gate 16 cycles,
type 3 gate 339 cycles (of which the TLB entry flush is 128 and the
page-table write under 2 cycles).
"""

from repro.eval import gate_cost_benchmark
from repro.eval.tables import format_gate_costs
from repro.system import System

PAPER = {"type1": 306, "type2": 16, "type3": 339,
         "tlb_flush": 128, "cache_write": 2}


def test_bench_gate_costs(benchmark):
    system = System.create(fidelius=True, frames=2048, seed=0x6A7E)
    costs = benchmark.pedantic(
        lambda: gate_cost_benchmark(iterations=500, system=system),
        rounds=3, iterations=1)
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        "type1": costs.type1_cycles,
        "type2": costs.type2_cycles,
        "type3": costs.type3_cycles,
        "tlb_flush": costs.type3_tlb_flush_cycles,
        "cache_write": costs.write_into_cache_cycles,
        "rejected_cr3_switch": costs.cr3_switch_alternative_cycles,
    }
    print()
    print(format_gate_costs(costs))
    assert costs.type1_cycles == PAPER["type1"]
    assert costs.type2_cycles == PAPER["type2"]
    assert costs.type3_cycles == PAPER["type3"]
