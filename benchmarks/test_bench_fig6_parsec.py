"""E2 — Figure 6: PARSEC normalized overhead.

Paper: Fidelius average 0.43%, Fidelius-enc average 1.97%; only canneal
shows a large overhead (14.27%).
"""

from repro.eval import average_overheads, run_figure
from repro.eval.tables import format_figure

PAPER = {"fidelius_avg": 0.43, "fidelius_enc_avg": 1.97,
         "canneal_enc": 14.27}


def test_bench_figure6(benchmark):
    results = benchmark.pedantic(
        lambda: run_figure("fig6"), rounds=3, iterations=1)
    fid_avg, enc_avg = average_overheads(results)
    rows = {r.name: round(r.fidelius_enc_overhead_pct, 2) for r in results}
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        "fidelius_avg": round(fid_avg, 2),
        "fidelius_enc_avg": round(enc_avg, 2),
        "per_benchmark_enc": rows,
    }
    print()
    print(format_figure(results, "Figure 6: PARSEC"))
    assert rows["canneal"] == max(rows.values())
    assert fid_avg < 1.0
