"""E1 — Figure 5: SPECCPU 2006 normalized overhead.

Paper: Fidelius average < 1% (0.88%), Fidelius-enc average 5.38%;
mcf 17.3% and omnetpp 16.3% are the outliers.
"""

from repro.eval import average_overheads, run_figure
from repro.eval.tables import format_figure

PAPER = {"fidelius_avg": 0.88, "fidelius_enc_avg": 5.38,
         "mcf_enc": 17.3, "omnetpp_enc": 16.3}


def test_bench_figure5(benchmark):
    results = benchmark.pedantic(
        lambda: run_figure("fig5"), rounds=3, iterations=1)
    fid_avg, enc_avg = average_overheads(results)
    rows = {r.name: round(r.fidelius_enc_overhead_pct, 2) for r in results}
    benchmark.extra_info["paper"] = PAPER
    benchmark.extra_info["measured"] = {
        "fidelius_avg": round(fid_avg, 2),
        "fidelius_enc_avg": round(enc_avg, 2),
        "per_benchmark_enc": rows,
    }
    print()
    print(format_figure(results, "Figure 5: SPECCPU 2006"))
    assert rows["mcf"] == max(rows.values())
    assert fid_avg < 1.5
