#!/usr/bin/env python3
"""A time-shared host running a protected web service.

Brings the whole stack together under scheduling pressure: two tenants
share the CPU under the preemptive scheduler; one runs a key-value
store over the encrypted block device, the other serves TLS-style
requests over the PV network — while the driver domain's complete
observation log is audited for leaks at the end.
"""

import random

from repro.system import GuestOwner, System
from repro.workloads.guestprogs import KeyValueStore
from repro.xen import hypercalls as hc
from repro.xen.pv_io.net import connect_net_device
from repro.xen.pv_io.secure_channel import SecureClient, SecureServer
from repro.xen.scheduler import GuestTask, RoundRobinScheduler

RECORDS = {b"alice": b"balance=19k", b"bob": b"balance=7k"}
QUERIES = [b"lookup:alice", b"lookup:bob", b"lookup:alice"]


def main():
    system = System.create(fidelius=True, frames=4096)

    print("== tenant 1: database over the encrypted block device ==")
    owner_db = GuestOwner(seed=11)
    dom_db, ctx_db = system.boot_protected_guest(
        "db", owner_db, payload=b"kv", guest_frames=64)
    encoder = system.aesni_encoder_for(ctx_db)
    disk, fe_db, be_db = system.attach_disk(dom_db, ctx_db, encoder=encoder)
    store = KeyValueStore(ctx_db, fe_db)
    ctx_db.hypercall(hc.HC_SCHED_YIELD)

    print("== tenant 2: TLS-style service over the PV network ==")
    owner_web = GuestOwner(seed=12)
    dom_web, ctx_web = system.boot_protected_guest(
        "web", owner_web, payload=b"tls client", guest_frames=64)
    fe_net, be_net, wire = connect_net_device(system.hypervisor, dom_web,
                                              ctx_web)
    server = SecureServer(random.Random(99))
    client = SecureClient(fe_net, server.pinned_public, random.Random(100))
    ctx_web.hypercall(hc.HC_SCHED_YIELD)

    def db_program(ctx):
        for key, value in RECORDS.items():
            store.put(key, value)
            yield
        for key in RECORDS:
            assert store.get(key) == RECORDS[key]
            yield

    def web_program(ctx):
        client.handshake(server)
        yield
        for query in QUERIES:
            response = client.request(query, server)
            assert response == b"ack:" + query
            yield

    print("== run both tenants under the preemptive scheduler ==")
    tasks = [GuestTask("db", ctx_db, db_program),
             GuestTask("web", ctx_web, web_program)]
    scheduler = RoundRobinScheduler(system.hypervisor, quantum=2)
    scheduler.run(tasks)
    for task in tasks:
        print("   %-4s steps=%d preemptions=%d done=%s"
              % (task.name, task.steps, task.preemptions, task.done))

    print("== audit: what crossed the untrusted host ==")
    host_saw = be_db.everything_observed() + be_net.everything_observed()
    probes = list(RECORDS.values()) + QUERIES + [owner_db.kblk]
    leaks = [p for p in probes if p in host_saw]
    print("   bytes observed by driver domain: %d" % len(host_saw))
    print("   leaked probes: %s" % (leaks or "none"))
    assert not leaks
    stats = system.fidelius.stats()
    print("   fidelius stats: %d shadow round trips, %d gate-1 "
          "crossings, audit chain intact: %s"
          % (stats["shadow_roundtrips"], stats["gate1_crossings"],
             system.fidelius.verify_audit_chain()))


if __name__ == "__main__":
    main()
