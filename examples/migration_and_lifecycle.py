#!/usr/bin/env python3
"""Full VM life cycle: boot, run, migrate between hosts, shut down.

Demonstrates Section 4.3 end to end:

* boot from an owner-prepared encrypted image (sealed to host A);
* run and accumulate in-memory state;
* migrate to host B through the SEND/RECEIVE transport — the package is
  ciphertext, the target re-encrypts under a fresh K_vek, and live
  migration is refused by design;
* shut down: keys uninstalled, context decommissioned, frames scrubbed.
"""

from repro import GuestOwner, paired_systems
from repro.common.errors import GateViolation
from repro.core.migration import migrate_guest, send_guest
from repro.xen import hypercalls as hc

PAGE = 4096


def main():
    host_a, host_b = paired_systems(frames=2048)
    owner = GuestOwner(seed=31337)

    print("== boot on host A ==")
    domain, ctx = host_a.boot_protected_guest(
        "traveler", owner, payload=b"stateful service", guest_frames=48)
    ctx.set_page_encrypted(9)
    ctx.write(9 * PAGE, b"session table: 8147 active sessions")
    ctx.hypercall(hc.HC_SCHED_YIELD)
    pa_a = host_a.hypervisor.guest_frame_hpfn(domain, 9) * PAGE
    cipher_a = host_a.machine.memory.read(pa_a, 16)
    print("   state written; ciphertext on host A: %s..."
          % cipher_a.hex()[:20])

    print("== migrate to host B ==")
    new_domain, new_ctx = migrate_guest(
        host_a.fidelius, domain, host_b.fidelius)
    state = new_ctx.read(9 * PAGE, 35)
    print("   state after migration: %r" % state)
    pa_b = host_b.hypervisor.guest_frame_hpfn(new_domain, 9) * PAGE
    cipher_b = host_b.machine.memory.read(pa_b, 16)
    print("   ciphertext on host B:  %s...  (fresh K_vek: %s)"
          % (cipher_b.hex()[:20], cipher_a != cipher_b))
    new_ctx.hypercall(hc.HC_SCHED_YIELD)  # give up host B's CPU

    print("== no live migration ==")
    spare_owner = GuestOwner(seed=4242)
    spare, spare_ctx = host_b.boot_protected_guest(
        "doomed", spare_owner, payload=b"x", guest_frames=32)
    spare_ctx.hypercall(hc.HC_SCHED_YIELD)
    send_guest(host_b.fidelius, spare,
               host_a.firmware.platform_public_key)
    try:
        spare_ctx.read(0, 4)
        print("   !! guest ran mid-migration")
    except GateViolation as exc:
        print("   VMRUN refused mid-migration: %s" % exc)

    print("== shutdown on host B ==")
    new_ctx.hypercall(hc.HC_SHUTDOWN)
    scrubbed = host_b.machine.memory.read(pa_b, 16)
    print("   frame scrubbed: %s" % (scrubbed == bytes(16)))
    print("   firmware handles left: %s" % host_b.firmware.handles())
    print("   audit: %s" % host_b.fidelius.audit_kinds()[-3:])


if __name__ == "__main__":
    main()
