#!/usr/bin/env python3
"""Performance tour: regenerate every Section 7 artefact in one run.

Prints Figure 5, Figure 6, Table 3 and the three micro benchmarks,
then compares the three I/O protection paths on the worst-case job —
the paper's whole evaluation story in under a minute.
"""

from repro.eval import (
    crypto_copy_benchmark,
    gate_cost_benchmark,
    run_figure,
    run_table3,
    shadow_cost_benchmark,
)
from repro.eval.tables import (
    format_crypto_costs,
    format_figure,
    format_gate_costs,
    format_shadow_costs,
    format_table3,
)


def io_path_shootout():
    """AES-NI vs SEV-API vs software on the seq-read job."""
    from repro import GuestOwner, System
    from repro.core.io_protect import SoftwareIoEncoder
    from repro.core.lifecycle import read_embedded_kblk
    from repro.workloads.fio import FioRunner, TABLE3_SPECS

    seq_read = next(s for s in TABLE3_SPECS if s.name == "seq-read")
    lines = ["I/O path shootout (seq-read, bytes per kilocycle):"]
    for kind in ("aes-ni", "sev-api", "software"):
        system = System.create(fidelius=True, frames=4096, seed=0x70E)
        owner = GuestOwner(seed=0x70E)
        domain, ctx = system.boot_protected_guest(
            "fio", owner, payload=b"x", guest_frames=96)
        if kind == "aes-ni":
            encoder = system.aesni_encoder_for(ctx)
        elif kind == "sev-api":
            encoder = system.sev_encoder_for(domain, ctx, pages=16)
        else:
            encoder = SoftwareIoEncoder(read_embedded_kblk(ctx),
                                        system.machine.cycles)
        runner = FioRunner(system, domain, ctx, encoder=encoder, seed=0x70E)
        lines.append("  %-9s %10.1f" % (kind, runner.throughput(seq_read)))
    return "\n".join(lines)


def main():
    print(format_figure(run_figure("fig5"), "Figure 5: SPECCPU 2006"))
    print()
    print(format_figure(run_figure("fig6"), "Figure 6: PARSEC"))
    print()
    print(format_table3(run_table3()))
    print()
    print(format_gate_costs(gate_cost_benchmark(iterations=300)))
    print()
    print(format_shadow_costs(shadow_cost_benchmark(iterations=150)))
    print()
    print(format_crypto_costs(crypto_copy_benchmark(megabytes=512)))
    print()
    print(io_path_shootout())


if __name__ == "__main__":
    main()
