#!/usr/bin/env python3
"""Quickstart: boot a Fidelius-protected guest and watch the host fail
to see anything.

Walks the full happy path of the paper:

1. the guest owner prepares an encrypted kernel image offline;
2. the Fidelius host boots the guest from it (RECEIVE APIs), verifying
   the measurement;
3. the guest computes on encrypted memory;
4. the guest does disk I/O through the AES-NI protected path;
5. we then put on the hypervisor's hat and try to steal the data.
"""

from repro import GuestOwner, System
from repro.common.errors import PolicyViolation
from repro.core.lifecycle import read_embedded_kblk, read_kernel_payload

PAGE = 4096


def main():
    print("== 1. guest owner prepares the image (trusted environment) ==")
    system = System.create(fidelius=True, frames=4096)
    owner = GuestOwner(seed=2024)
    print("   disk key K_blk: %s... (never leaves encrypted memory)"
          % owner.kblk.hex()[:16])

    print("== 2. boot from the encrypted kernel image ==")
    domain, ctx = system.boot_protected_guest(
        "quickstart-vm", owner, payload=b"my application v1.0",
        guest_frames=64)
    print("   guest '%s' booted; ASID=%d; Fidelius-protected: %s"
          % (domain.name, domain.asid,
             domain in system.fidelius.protected_domains))
    print("   kernel payload read back inside the guest: %r"
          % read_kernel_payload(ctx, 19))

    print("== 3. compute on encrypted memory ==")
    ctx.set_page_encrypted(5)
    ctx.write(5 * PAGE, b"account balance: $1,000,000")
    print("   guest sees:      %r" % ctx.read(5 * PAGE, 27))
    hpa = system.hypervisor.guest_frame_hpfn(domain, 5) * PAGE
    print("   DRAM bus sees:   %r..." % system.machine.memory.read(hpa, 16))

    print("== 4. protected disk I/O (AES-NI path) ==")
    encoder = system.aesni_encoder_for(ctx)
    assert read_embedded_kblk(ctx) == owner.kblk
    disk, frontend, backend = system.attach_disk(domain, ctx,
                                                 encoder=encoder)
    frontend.write(10, b"customer list: alice, bob, carol")
    data = frontend.read(10, 1)
    print("   guest reads back: %r" % data[:32])
    print("   driver domain observed plaintext: %s"
          % (b"alice" in backend.everything_observed()))
    print("   disk at rest holds plaintext:     %s"
          % (b"alice" in disk.raw_sector(10)))

    print("== 5. the hypervisor turns malicious ==")
    try:
        system.machine.cpu.load(hpa, 27)
        print("   !! hypervisor read guest memory")
    except PolicyViolation as exc:
        print("   hypervisor read blocked: %s" % exc)
    print("   audit log: %s" % system.fidelius.audit_kinds()[-3:])


if __name__ == "__main__":
    main()
