#!/usr/bin/env python3
"""A tenant database server on an untrusted cloud host.

The paper's motivating scenario (Section 1): a multi-tenant cloud where
the tenant's data must stay confidential against curious or malicious
insiders.  A tiny key-value "database" runs inside a protected guest:

* the database file ships as a disk image encrypted with K_blk;
* the working set lives in K_vek-encrypted guest memory;
* query results are *deliberately* published to a peer VM through the
  declared memory-sharing mechanism (pre_sharing_op + grants) — the one
  channel that is supposed to be open;
* everything else stays dark: we audit what the host ever saw.
"""

from repro import GuestOwner, System
from repro.xen import hypercalls as hc

PAGE = 4096
RECORDS = {
    "alice": b"alice:   card=4242-0001  balance=$19,000",
    "bob": b"bob:     card=4242-0002  balance=$7,300",
    "carol": b"carol:   card=4242-0003  balance=$52,110",
}


def build_database_image(owner):
    """Serialize the table and encrypt it with K_blk, offline."""
    blob = b"\n".join(RECORDS.values()) + b"\n"
    return owner.encrypt_disk_image(blob)


class TinyDatabase:
    """The in-guest database engine (runs on the GuestContext API)."""

    HEAP_GFN = 8

    def __init__(self, ctx, frontend):
        self.ctx = ctx
        self.frontend = frontend
        ctx.set_page_encrypted(self.HEAP_GFN)  # working set is encrypted

    def load(self):
        table = self.frontend.read(0, 1)  # decrypts with K_blk
        self.ctx.write(self.HEAP_GFN * PAGE, table)
        return table.rstrip(b"\x00").count(b"\n")

    def query(self, needle):
        table = self.ctx.read(self.HEAP_GFN * PAGE, PAGE)
        for line in table.split(b"\n"):
            if line.startswith(needle):
                return line
        return b"(no row)"


def main():
    system = System.create(fidelius=True, frames=4096)
    owner = GuestOwner(seed=777)

    print("== deploy the database guest ==")
    domain, ctx = system.boot_protected_guest(
        "tenant-db", owner, payload=b"tinydb v0.1", guest_frames=64)
    encoder = system.aesni_encoder_for(ctx)
    disk, frontend, backend = system.attach_disk(
        domain, ctx, encoder=encoder, image=build_database_image(owner))

    db = TinyDatabase(ctx, frontend)
    rows = db.load()
    print("   loaded %d rows from the encrypted image" % rows)

    print("== serve queries ==")
    row = db.query(b"carol")
    print("   query('carol') -> %r" % row)

    print("== publish a result to the analytics VM (declared share) ==")
    analytics = system.hypervisor.create_domain("analytics", 32, sev=False)
    share_gfn = 12
    ctx.write(share_gfn * PAGE, b"monthly-total: $78,410")
    assert ctx.hypercall(hc.HC_PRE_SHARING, analytics.domid,
                         share_gfn, 1, 1) == hc.E_OK  # read-only
    ref = ctx.hypercall(hc.HC_GRANT_CREATE, analytics.domid, share_gfn, 1)
    ctx.hypercall(hc.HC_SCHED_YIELD)
    actx = analytics.context()
    assert actx.hypercall(hc.HC_GRANT_MAP, domain.domid, ref, 4, 0) == hc.E_OK
    print("   analytics VM reads: %r" % actx.read(4 * PAGE, 22))

    print("== what did the untrusted host ever see? ==")
    observed = backend.everything_observed()
    dump = system.machine.cold_boot_dump()
    leak_probes = [b"4242-0003", b"carol:", owner.kblk]
    for probe in leak_probes:
        in_flight = probe in observed
        at_rest = any(probe in disk.raw_sector(s) for s in range(8))
        in_dram = any(probe in frame for frame in dump.values())
        print("   %-12r in-flight=%s at-rest=%s dram=%s"
              % (probe[:12], in_flight, at_rest, in_dram))
    assert not any(probe in observed for probe in leak_probes)
    print("   nothing leaked; published share was the only open channel.")


if __name__ == "__main__":
    main()
