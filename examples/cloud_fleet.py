#!/usr/bin/env python3
"""Operating a fleet of Fidelius hosts.

The control-plane view: attest hosts before trusting them, place
tenants on the least-loaded attested host, drain a host for
maintenance, and kick a compromised host out of the placement pool —
all with tenant state travelling only as SEV transport ciphertext.
"""

from repro.cloud import Cloud
from repro.core.invariants import check_invariants
from repro.system import GuestOwner
from repro.xen import hypercalls as hc

PAGE = 4096


def main():
    cloud = Cloud(hosts=3, frames=2048)
    print("== fleet attestation ==")
    print("   attested hosts: %s" % cloud.attested_hosts())

    print("== tenant placement ==")
    tenants = []
    for i in range(4):
        tenant = cloud.launch_tenant(
            "tenant-%d" % i, GuestOwner(seed=100 + i),
            payload=b"workload-%d" % i)
        tenant.ctx.set_page_encrypted(7)
        tenant.ctx.write(7 * PAGE, b"state of tenant %d" % i)
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        tenants.append(tenant)
    print("   inventory: %s" % cloud.inventory())

    print("== drain host 0 for maintenance ==")
    moved = cloud.evacuate(0)
    print("   migrated off: %s" % moved)
    print("   inventory: %s" % cloud.inventory())
    for tenant in tenants:
        index = int(tenant.name.split("-")[1])
        expected = b"state of tenant %d" % index
        state = tenant.ctx.read(7 * PAGE, len(expected))
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        assert state == expected
    print("   every tenant's state survived the migrations")

    print("== host 2 gets compromised ==")
    host2 = cloud.host(2)
    host2.machine.memory.write(
        host2.hypervisor.text.base_va + 0x600, b"\xCC\xCC")  # implant
    print("   attested hosts now: %s" % cloud.attested_hosts())
    fresh = cloud.launch_tenant("post-incident", GuestOwner(seed=999))
    print("   new tenant placed on host %d (never on the compromised "
          "one)" % fresh.host_index)
    assert fresh.host_index != 2

    print("== fleet health ==")
    for index in cloud.attested_hosts():
        violations = check_invariants(cloud.host(index))
        print("   host %d invariants: %s"
              % (index, "OK" if not violations else violations))


if __name__ == "__main__":
    main()
