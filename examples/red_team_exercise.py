#!/usr/bin/env python3
"""Red-team exercise: the full Section 6 attack matrix, live.

Runs all 28 attack programs twice — against a plain SEV host and
against a Fidelius host — and prints the resulting security matrix,
then zooms into one attack to show the audit trail Fidelius leaves.
"""

from repro.attacks import format_matrix, run_matrix
from repro.attacks.grants import grant_permission_widening
from repro.system import System


def main():
    print("Running the attack matrix (28 attacks x 2 configurations)...")
    rows = run_matrix()
    print()
    print(format_matrix(rows))

    survived = [r.name for r in rows if r.fidelius_succeeded]
    print()
    print("Attacks surviving Fidelius (conceded to hardware, Section 8):")
    for name in survived:
        print("  - %s" % name)

    print()
    print("Zoom: grant-permission-widening against a Fidelius host")
    system = System.create(fidelius=True, frames=2048, seed=99)
    result = grant_permission_widening(system)
    print("  outcome:     %s" % ("succeeded" if result.succeeded
                                 else "BLOCKED"))
    print("  mechanism:   %s" % result.blocked_by)
    print("  detail:      %s" % result.detail)
    print("  audit trail:")
    for kind, details in system.fidelius.audit[-4:]:
        print("    %-18s %s" % (kind, details))


if __name__ == "__main__":
    main()
